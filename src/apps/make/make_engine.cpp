#include "apps/make/make_engine.h"

#include <algorithm>
#include <atomic>
#include <latch>
#include <semaphore>
#include <thread>

#include "common/logging.h"

namespace mca {

TimestampedFile& FileTable::file(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, std::make_unique<TimestampedFile>(rt_)).first;
  }
  return *it->second;
}

bool FileTable::has(const std::string& name) const {
  const std::scoped_lock lock(mutex_);
  return files_.contains(name);
}

std::vector<std::string> FileTable::names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, file] : files_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

struct MakeEngine::RunState {
  MakeOptions options;
  MakeReport report;
  std::unique_ptr<SerializingAction> serializing;  // Serializing mode
  std::unique_ptr<AtomicAction> single;            // SingleAction mode
  std::mutex mutex;                                // guards report + memo
  std::unordered_map<std::string, std::shared_future<void>> memo;
  // make -j limiter for command execution (null = unlimited).
  std::unique_ptr<std::counting_semaphore<1024>> job_slots;
  // Prerequisite branches currently offloaded to the executor (bounded by
  // options.fanout_parallel when non-zero).
  std::atomic<std::size_t> fanout_in_flight{0};
};

MakeReport MakeEngine::run(const std::string& goal, const MakeOptions& options) {
  return run_goals({goal}, options);
}

MakeReport MakeEngine::run_goals(const std::vector<std::string>& goals,
                                 const MakeOptions& options) {
  RunState state;
  state.options = options;
  if (options.max_parallel > 0) {
    state.job_slots = std::make_unique<std::counting_semaphore<1024>>(
        static_cast<std::ptrdiff_t>(std::min<std::size_t>(options.max_parallel, 1024)));
  }
  try {
    for (const std::string& goal : goals) makefile_.check_acyclic(goal);
    if (options.mode == MakeMode::Serializing) {
      state.serializing = std::make_unique<SerializingAction>(rt_);
      state.serializing->begin();
    } else {
      state.single = std::make_unique<AtomicAction>(rt_);
      state.single->begin();
    }
    for (const std::string& goal : goals) ensure(goal, state);
    if (state.serializing != nullptr) {
      state.serializing->end();
    } else {
      if (state.single->commit() != Outcome::Committed) {
        throw std::runtime_error("top-level make action failed to commit");
      }
    }
    state.report.ok = true;
  } catch (const std::exception& e) {
    state.report.ok = false;
    state.report.error = e.what();
    try {
      if (state.serializing != nullptr &&
          state.serializing->action().status() == ActionStatus::Running) {
        state.serializing->abort();
      }
      if (state.single != nullptr && state.single->status() == ActionStatus::Running) {
        state.single->abort();
      }
    } catch (const std::exception& inner) {
      MCA_LOG(Error, "make") << "cleanup failed: " << inner.what();
    }
  }
  return state.report;
}

void MakeEngine::fail_on_target(const std::string& target) {
  const std::scoped_lock lock(fail_mutex_);
  fail_targets_.insert(target);
}

void MakeEngine::ensure(const std::string& target, RunState& state) {
  // Memoize so shared prerequisites are made consistent exactly once, even
  // when referenced from concurrent branches.
  std::shared_future<void> waiter;
  std::promise<void> promise;
  bool builder = false;
  {
    const std::scoped_lock lock(state.mutex);
    auto it = state.memo.find(target);
    if (it == state.memo.end()) {
      waiter = promise.get_future().share();
      state.memo.emplace(target, waiter);
      builder = true;
    } else {
      waiter = it->second;
    }
  }
  if (!builder) {
    waiter.get();  // rethrows the builder's failure
    return;
  }

  try {
    const MakeRule* rule = makefile_.rule_for(target);
    if (rule == nullptr) {
      // Phase (i) leaf: a source file must exist; check inside a unit so the
      // read is properly locked.
      run_unit(state, [&] {
        if (!files_.file(target).exists()) {
          throw std::runtime_error("no rule to make " + target);
        }
      });
    } else {
      // Phase (i): make every prerequisite consistent first. Branches ride
      // the runtime executor's blocking lane (they may block on locks, job
      // slots and each other's memo futures); a branch the engine-side
      // bound or the lane refuses runs inline here — same result, less
      // overlap.
      if (state.options.concurrent && rule->prerequisites.size() > 1) {
        const std::size_t n = rule->prerequisites.size();
        std::vector<std::exception_ptr> failures(n);
        std::latch done(static_cast<std::ptrdiff_t>(n));
        for (std::size_t i = 0; i < n; ++i) {
          auto work = [this, &state, rule, &failures, &done, i] {
            try {
              ensure(rule->prerequisites[i], state);
            } catch (...) {
              failures[i] = std::current_exception();
            }
            done.count_down();
          };
          bool offloaded = false;
          const std::size_t bound = state.options.fanout_parallel;
          if (bound == 0 || state.fanout_in_flight.load() < bound) {
            state.fanout_in_flight.fetch_add(1);
            offloaded = rt_.executor().try_submit_blocking([&state, work] {
              work();
              state.fanout_in_flight.fetch_sub(1);
            });
            if (!offloaded) state.fanout_in_flight.fetch_sub(1);
          }
          if (!offloaded) work();
        }
        done.wait();
        for (const auto& failure : failures) {
          if (failure) std::rethrow_exception(failure);
        }
      } else {
        for (const std::string& prereq : rule->prerequisites) ensure(prereq, state);
      }
      build_target(*rule, state);
    }
    promise.set_value();
  } catch (...) {
    promise.set_exception(std::current_exception());
    waiter.get();  // rethrow for this caller too
  }
}

void MakeEngine::build_target(const MakeRule& rule, RunState& state) {
  // Phases (ii)-(iv): compare timestamps and, when stale, execute the
  // commands — one unit of work, top level for permanence in Serializing
  // mode.
  run_unit(state, [&] {
    {
      const std::scoped_lock lock(state.mutex);
      ++state.report.targets_checked;
    }
    FileApi& target_file = files_.file(rule.target);
    const bool exists = target_file.exists();
    const std::int64_t target_ts = exists ? target_file.timestamp() : -1;

    bool stale = !exists || makefile_.is_phony(rule.target);
    std::string combined;
    for (const std::string& prereq : rule.prerequisites) {
      FileApi& p = files_.file(prereq);
      if (p.timestamp() > target_ts) stale = true;
      combined += p.content();
      combined += ';';
    }
    if (!stale) return;

    {
      const std::scoped_lock lock(fail_mutex_);
      if (fail_targets_.contains(rule.target)) {
        fail_targets_.erase(rule.target);
        throw std::runtime_error("injected failure rebuilding " + rule.target);
      }
    }
    // Execute the commands: simulated compile with configurable cost. This
    // is a *distributed* make — each compilation runs on some workstation of
    // the network — so the local engine waits (sleeps) for it rather than
    // burning this node's CPU; concurrent compilations genuinely overlap,
    // bounded by the -j job slots when configured.
    if (state.options.command_cost.count() > 0) {
      if (state.job_slots != nullptr) state.job_slots->acquire();
      std::this_thread::sleep_for(state.options.command_cost);
      if (state.job_slots != nullptr) state.job_slots->release();
    }
    target_file.write("built[" + rule.target + "](" + combined + ")");
    {
      const std::scoped_lock lock(state.mutex);
      state.report.rebuilt.push_back(rule.target);
    }
    MCA_LOG(Debug, "make") << "rebuilt " << rule.target;
  });
}

void MakeEngine::run_unit(RunState& state, const std::function<void()>& body) {
  if (state.serializing != nullptr) {
    auto constituent = state.serializing->constituent();
    constituent->begin();
    try {
      body();
    } catch (...) {
      constituent->abort();
      throw;
    }
    if (constituent->commit() != Outcome::Committed) {
      throw std::runtime_error("constituent failed to commit");
    }
  } else {
    AtomicAction unit(rt_, state.single.get(), {});
    unit.begin();
    try {
      body();
    } catch (...) {
      unit.abort();
      throw;
    }
    if (unit.commit() != Outcome::Committed) {
      throw std::runtime_error("nested make action failed to commit");
    }
  }
}

}  // namespace mca
