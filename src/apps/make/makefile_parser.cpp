#include "apps/make/makefile_parser.h"

#include <set>
#include <sstream>

namespace mca {
namespace {

std::string strip(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_words(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

}  // namespace

Makefile Makefile::parse(const std::string& text) {
  Makefile mf;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    if (strip(line).empty()) continue;

    const bool is_command = line.front() == '\t' || line.front() == ' ';
    if (is_command) {
      if (mf.rules_.empty()) {
        throw MakefileError("command line before any rule: " + strip(line));
      }
      mf.rules_.back().commands.push_back(strip(line));
      continue;
    }

    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw MakefileError("malformed rule line (no ':'): " + line);
    }
    if (strip(line.substr(0, colon)) == ".PHONY") {
      const auto names = split_words(line.substr(colon + 1));
      mf.phony_.insert(names.begin(), names.end());
      continue;
    }
    MakeRule rule;
    rule.target = strip(line.substr(0, colon));
    if (rule.target.empty() || rule.target.find(' ') != std::string::npos) {
      throw MakefileError("malformed target in: " + line);
    }
    rule.prerequisites = split_words(line.substr(colon + 1));
    if (mf.by_target_.contains(rule.target)) {
      throw MakefileError("duplicate target: " + rule.target);
    }
    mf.by_target_[rule.target] = mf.rules_.size();
    mf.rules_.push_back(std::move(rule));
  }
  if (mf.rules_.empty()) throw MakefileError("makefile has no rules");
  return mf;
}

const MakeRule* Makefile::rule_for(const std::string& target) const {
  auto it = by_target_.find(target);
  return it == by_target_.end() ? nullptr : &rules_[it->second];
}

const std::string& Makefile::default_goal() const { return rules_.front().target; }

std::vector<std::string> Makefile::all_files() const {
  std::set<std::string> names;
  for (const MakeRule& r : rules_) {
    names.insert(r.target);
    names.insert(r.prerequisites.begin(), r.prerequisites.end());
  }
  return {names.begin(), names.end()};
}

bool Makefile::is_phony(const std::string& target) const { return phony_.contains(target); }

void Makefile::check_acyclic(const std::string& goal) const {
  enum class Mark { None, InProgress, Done };
  std::unordered_map<std::string, Mark> marks;
  // Iterative DFS with an explicit stack of (node, next-child-index).
  std::vector<std::pair<std::string, std::size_t>> stack{{goal, 0}};
  marks[goal] = Mark::InProgress;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const MakeRule* rule = rule_for(node);
    const std::size_t fanout = rule != nullptr ? rule->prerequisites.size() : 0;
    if (next >= fanout) {
      marks[node] = Mark::Done;
      stack.pop_back();
      continue;
    }
    const std::string& child = rule->prerequisites[next++];
    switch (marks[child]) {
      case Mark::InProgress:
        throw MakefileError("dependency cycle through " + child);
      case Mark::None:
        marks[child] = Mark::InProgress;
        stack.emplace_back(child, 0);
        break;
      case Mark::Done:
        break;
    }
  }
}

}  // namespace mca
