// Makefile model and parser for the distributed-make example (paper §4 iv).
//
// Supports the classic subset the paper's example uses:
//
//   Test: Test0.o Test1.o
//   <TAB>cc -o Test Test0.o Test1.o
//
// Rule lines are "target: prerequisite...", command lines are indented with
// a tab (or spaces) and attach to the preceding rule. '#' starts a comment.
// ".PHONY: name..." marks targets that are always rebuilt regardless of
// timestamps (the conventional make extension).
#pragma once

#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace mca {

struct MakeRule {
  std::string target;
  std::vector<std::string> prerequisites;
  std::vector<std::string> commands;
};

class MakefileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Makefile {
 public:
  // Throws MakefileError on malformed input or duplicate targets.
  static Makefile parse(const std::string& text);

  // The rule for `target`, or nullptr when `target` is a source file.
  [[nodiscard]] const MakeRule* rule_for(const std::string& target) const;

  [[nodiscard]] const std::vector<MakeRule>& rules() const { return rules_; }

  // The default goal: the first rule's target.
  [[nodiscard]] const std::string& default_goal() const;

  // Every file name mentioned (targets and prerequisites).
  [[nodiscard]] std::vector<std::string> all_files() const;

  // True for targets declared in a ".PHONY:" line.
  [[nodiscard]] bool is_phony(const std::string& target) const;

  // Throws MakefileError if the dependency graph has a cycle reachable from
  // `goal` or names a prerequisite chain that can never resolve.
  void check_acyclic(const std::string& goal) const;

 private:
  std::vector<MakeRule> rules_;
  std::unordered_map<std::string, std::size_t> by_target_;
  std::set<std::string> phony_;
};

}  // namespace mca
