// TimestampedFile: the persistent file object of the distributed-make
// example (paper §4 iv).
//
// "Each file has a timestamp associated with it, which is updated
// automatically every time the file is changed." Timestamps are logical
// (a process-wide counter) so runs are deterministic.
#pragma once

#include <atomic>

#include "objects/lock_managed.h"

namespace mca {

// Monotonic logical clock shared by all files.
class LogicalClock {
 public:
  static std::int64_t tick() { return counter().fetch_add(1) + 1; }
  static std::int64_t now() { return counter().load(); }

 private:
  static std::atomic<std::int64_t>& counter() {
    static std::atomic<std::int64_t> c{0};
    return c;
  }
};

// What the make engine needs of a file, wherever it lives: implemented by
// TimestampedFile (local object) and by RemoteFile (proxy to a file hosted
// on another node), so the same engine runs local and distributed makes.
class FileApi {
 public:
  virtual ~FileApi() = default;
  [[nodiscard]] virtual std::string content() const = 0;
  [[nodiscard]] virtual std::int64_t timestamp() const = 0;
  [[nodiscard]] virtual bool exists() const = 0;
  virtual void write(const std::string& content) = 0;
};

class TimestampedFile final : public LockManaged, public FileApi {
 public:
  using LockManaged::LockManaged;

  [[nodiscard]] std::string content() const override;
  [[nodiscard]] std::int64_t timestamp() const override;
  [[nodiscard]] bool exists() const override;

  // Replaces the content and advances the timestamp (write lock).
  void write(const std::string& content) override;

  // Sets content with an explicit timestamp (workload setup).
  void write_with_timestamp(const std::string& content, std::int64_t timestamp);

  [[nodiscard]] std::string type_name() const override { return "TimestampedFile"; }
  void save_state(ByteBuffer& out) const override;
  void restore_state(ByteBuffer& in) override;

 private:
  std::string content_;
  std::int64_t timestamp_ = 0;
  bool exists_ = false;
};

}  // namespace mca
