#include "apps/bboard/bulletin_board.h"

#include <algorithm>

namespace mca {

std::uint64_t BulletinBoard::post(const std::string& author, const std::string& body) {
  setlock_throw(LockMode::Write);
  modified();
  const std::uint64_t id = next_id_++;
  postings_.push_back(Posting{id, author, body, false});
  return id;
}

bool BulletinBoard::retract(std::uint64_t id) {
  setlock_throw(LockMode::Write);
  modified();
  auto it = std::find_if(postings_.begin(), postings_.end(),
                         [&](const Posting& p) { return p.id == id; });
  if (it == postings_.end() || it->retracted) return false;
  it->retracted = true;
  return true;
}

std::vector<BulletinBoard::Posting> BulletinBoard::postings() const {
  setlock_throw(LockMode::Read);
  return postings_;
}

std::size_t BulletinBoard::active_count() const {
  setlock_throw(LockMode::Read);
  return static_cast<std::size_t>(
      std::count_if(postings_.begin(), postings_.end(),
                    [](const Posting& p) { return !p.retracted; }));
}

void BulletinBoard::save_state(ByteBuffer& out) const {
  out.pack_u64(next_id_);
  out.pack_u32(static_cast<std::uint32_t>(postings_.size()));
  for (const Posting& p : postings_) {
    out.pack_u64(p.id);
    out.pack_string(p.author);
    out.pack_string(p.body);
    out.pack_bool(p.retracted);
  }
}

void BulletinBoard::restore_state(ByteBuffer& in) {
  next_id_ = in.unpack_u64();
  postings_.clear();
  const std::uint32_t n = in.unpack_u32();
  postings_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Posting p;
    p.id = in.unpack_u64();
    p.author = in.unpack_string();
    p.body = in.unpack_string();
    p.retracted = in.unpack_bool();
    postings_.push_back(std::move(p));
  }
}

std::optional<std::uint64_t> BulletinBoard::post_independent(Runtime& rt, BulletinBoard& board,
                                                             const std::string& author,
                                                             const std::string& body) {
  std::uint64_t id = 0;
  const Outcome outcome =
      IndependentAction::run(rt, [&] { id = board.post(author, body); });
  if (outcome != Outcome::Committed) return std::nullopt;
  return id;
}

bool BulletinBoard::retract_independent(Runtime& rt, BulletinBoard& board, std::uint64_t id) {
  bool retracted = false;
  const Outcome outcome =
      IndependentAction::run(rt, [&] { retracted = board.retract(id); });
  return outcome == Outcome::Committed && retracted;
}

}  // namespace mca
