// Bulletin board (paper §4 i).
//
// Posting and reading are short atomic actions; invoked from inside an
// application action they run as *top-level independent* actions so board
// information never stays locked or invisible for the life of a long
// application action. If the application later aborts, the post is undone
// by an application-specific *compensating* action (retract), exactly as
// the paper prescribes.
#pragma once

#include <optional>

#include "core/structures/independent_action.h"
#include "objects/lock_managed.h"

namespace mca {

class BulletinBoard final : public LockManaged {
 public:
  using LockManaged::LockManaged;

  struct Posting {
    std::uint64_t id;
    std::string author;
    std::string body;
    bool retracted;
  };

  // Raw operations (call inside an action of your choosing).
  std::uint64_t post(const std::string& author, const std::string& body);
  bool retract(std::uint64_t id);
  [[nodiscard]] std::vector<Posting> postings() const;
  [[nodiscard]] std::size_t active_count() const;

  [[nodiscard]] std::string type_name() const override { return "BulletinBoard"; }
  void save_state(ByteBuffer& out) const override;
  void restore_state(ByteBuffer& in) override;

  // -- §4(i) convenience wrappers: operations as independent actions ----------

  // Posts from inside (or outside) an application action; the post commits
  // independently. Returns the posting id, or nullopt if the independent
  // action aborted.
  static std::optional<std::uint64_t> post_independent(Runtime& rt, BulletinBoard& board,
                                                       const std::string& author,
                                                       const std::string& body);

  // The compensating action for a post whose surrounding application work
  // was abandoned.
  static bool retract_independent(Runtime& rt, BulletinBoard& board, std::uint64_t id);

 private:
  std::uint64_t next_id_ = 1;
  std::vector<Posting> postings_;
};

}  // namespace mca
