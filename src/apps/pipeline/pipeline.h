// Staged workflows: the paper's motivating "long-lived application
// function" (§3), structured with everything the paper proposes.
//
// A long-lived function (order processing, document publishing, ...) must
// not run as one top-level action: it would hold locks for its entire life
// and an abort near the end would undo hours of work. A Pipeline instead
// runs each stage as a glued constituent:
//
//   * each completed stage is PERMANENT at its own commit (top level in the
//     work colour) — a later failure cannot silently undo it;
//   * objects a stage passes on stay locked across the gap to the next
//     stage (glue colour), everything else is released immediately;
//   * because committed stages cannot be rolled back by the kernel, each
//     stage registers a COMPENSATOR; when a later stage fails, the engine
//     compensates the committed prefix in reverse order, each compensation
//     a top-level independent action (§3.4's future-work mechanism).
//
// Stages receive a StageContext to mark objects for hand-over and to record
// audit entries (independent, surviving any outcome).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/structures/compensating_action.h"
#include "core/structures/glued_action.h"
#include "objects/recoverable_log.h"

namespace mca {

class StageContext {
 public:
  // Keeps `obj` locked through to the next stage.
  void pass_on(LockManaged& obj) { glue_->pass_on(*constituent_, obj); }

  // Appends to the pipeline's audit log as an independent action when the
  // stage commits (buffered so an aborted stage leaves no audit residue).
  void audit(std::string entry) { audit_entries_.push_back(std::move(entry)); }

  [[nodiscard]] const std::string& stage_name() const { return name_; }

 private:
  friend class Pipeline;
  StageContext(GlueGroup& glue, GlueGroup::Constituent& constituent, std::string name)
      : glue_(&glue), constituent_(&constituent), name_(std::move(name)) {}

  GlueGroup* glue_;
  GlueGroup::Constituent* constituent_;
  std::string name_;
  std::vector<std::string> audit_entries_;
};

struct PipelineResult {
  bool completed = false;
  std::size_t stages_run = 0;        // stages that committed
  std::size_t compensations_run = 0; // committed compensators after failure
  std::string failed_stage;
  std::string error;
};

class Pipeline {
 public:
  using StageBody = std::function<void(StageContext&)>;
  using Compensator = std::function<void()>;

  // `audit` (optional) receives one entry per stage/compensation event.
  explicit Pipeline(Runtime& rt, RecoverableLog* audit = nullptr)
      : rt_(rt), audit_(audit) {}

  // Adds a stage. The compensator must semantically undo the stage's
  // committed effects; pass nullptr for stages that need none (read-only or
  // naturally idempotent).
  Pipeline& stage(std::string name, StageBody body, Compensator compensator = nullptr);

  // Runs the stages in order. On a stage failure the committed prefix is
  // compensated in reverse and the result reports the failure. Never
  // throws.
  PipelineResult run();

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  struct StageSpec {
    std::string name;
    StageBody body;
    Compensator compensator;
  };

  void append_audit(const std::string& entry);

  Runtime& rt_;
  RecoverableLog* audit_;
  std::vector<StageSpec> stages_;
};

}  // namespace mca
