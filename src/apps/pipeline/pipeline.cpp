#include "apps/pipeline/pipeline.h"

#include "common/logging.h"
#include "core/structures/independent_action.h"

namespace mca {

Pipeline& Pipeline::stage(std::string name, StageBody body, Compensator compensator) {
  stages_.push_back(StageSpec{std::move(name), std::move(body), std::move(compensator)});
  return *this;
}

void Pipeline::append_audit(const std::string& entry) {
  if (audit_ == nullptr) return;
  (void)IndependentAction::run(rt_, [&] { audit_->append(entry); });
}

PipelineResult Pipeline::run() {
  PipelineResult result;
  GlueGroup glue(rt_);
  glue.begin();
  std::vector<const StageSpec*> committed;

  for (const StageSpec& spec : stages_) {
    GlueGroup::Constituent constituent = glue.constituent();
    constituent.begin();
    StageContext context(glue, constituent, spec.name);
    try {
      spec.body(context);
    } catch (const std::exception& e) {
      constituent.abort();
      result.failed_stage = spec.name;
      result.error = e.what();
      append_audit("FAILED " + spec.name + ": " + e.what());
      // Compensate the committed prefix in reverse; each compensation is a
      // top-level independent action of its own.
      for (auto it = committed.rbegin(); it != committed.rend(); ++it) {
        if ((*it)->compensator == nullptr) continue;
        if (IndependentAction::run(rt_, (*it)->compensator) == Outcome::Committed) {
          ++result.compensations_run;
          append_audit("COMPENSATED " + (*it)->name);
        } else {
          MCA_LOG(Warn, "pipeline") << "compensator for stage '" << (*it)->name
                                    << "' aborted";
          append_audit("COMPENSATION-FAILED " + (*it)->name);
        }
      }
      glue.abort();
      return result;
    }
    if (constituent.commit() != Outcome::Committed) {
      result.failed_stage = spec.name;
      result.error = "stage failed to commit";
      glue.abort();
      return result;
    }
    committed.push_back(&spec);
    ++result.stages_run;
    append_audit("DONE " + spec.name);
    for (const std::string& entry : context.audit_entries_) {
      append_audit(spec.name + ": " + entry);
    }
  }
  glue.end();
  result.completed = true;
  return result;
}

}  // namespace mca
