#include "apps/mcad/daemon.h"

#include <unistd.h>

#include <csignal>
#include <stdexcept>

#include "dist/remote.h"
#include "dist/tpc.h"
#include "sim/crash_points.h"

namespace mca::apps {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::uint64_t parse_number(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size() || v < 0) throw std::invalid_argument(s);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + ": bad number '" + s + "'");
  }
}

}  // namespace

std::unordered_map<NodeId, UdpAddress> parse_peer_map(const std::string& spec) {
  std::unordered_map<NodeId, UdpAddress> peers;
  for (const std::string& entry : split(spec, ',')) {
    const std::size_t eq = entry.find('=');
    const std::size_t colon = entry.rfind(':');
    if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
      throw std::invalid_argument("peer map: want id=host:port, got '" + entry + "'");
    }
    const auto id = static_cast<NodeId>(parse_number(entry.substr(0, eq), "peer id"));
    UdpAddress addr;
    addr.host = entry.substr(eq + 1, colon - eq - 1);
    addr.port = static_cast<std::uint16_t>(parse_number(entry.substr(colon + 1), "peer port"));
    peers[id] = std::move(addr);
  }
  return peers;
}

std::vector<NodeId> parse_node_list(const std::string& spec) {
  std::vector<NodeId> out;
  for (const std::string& entry : split(spec, ',')) {
    out.push_back(static_cast<NodeId>(parse_number(entry, "node id")));
  }
  return out;
}

std::map<std::uint32_t, std::int64_t> parse_int_map(const std::string& spec) {
  std::map<std::uint32_t, std::int64_t> out;
  for (const std::string& entry : split(spec, ',')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("int map: want key=initial, got '" + entry + "'");
    }
    const auto key = static_cast<std::uint32_t>(parse_number(entry.substr(0, eq), "int key"));
    out[key] = std::stoll(entry.substr(eq + 1));
  }
  return out;
}

ByteBuffer pack_report(const ConsistencyReport& report) {
  ByteBuffer out;
  out.pack_u32(static_cast<std::uint32_t>(report.violations.size()));
  for (const std::string& v : report.violations) out.pack_string(v);
  return out;
}

ConsistencyReport unpack_report(ByteBuffer& in) {
  ConsistencyReport report;
  const std::uint32_t n = in.unpack_u32();
  report.violations.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) report.violations.push_back(in.unpack_string());
  return report;
}

ByteBuffer pack_transfer(const std::vector<TransferLeg>& legs) {
  ByteBuffer out;
  out.pack_u32(static_cast<std::uint32_t>(legs.size()));
  for (const TransferLeg& leg : legs) {
    out.pack_u32(leg.node);
    out.pack_u32(leg.key);
    out.pack_i64(leg.delta);
  }
  return out;
}

NodeDaemon::NodeDaemon(DaemonConfig config) : config_(std::move(config)) {
  UdpTransportConfig tc;
  tc.peers = config_.peers;
  transport_ = std::make_unique<UdpTransport>(std::move(tc));
  node_ = std::make_unique<DistNode>(*transport_, config_.id, config_.data_dir, config_.backend,
                                     config_.rpc_workers);
  node_->set_invoke_timeout(config_.invoke_timeout);
  node_->set_tpc_call_timeout(config_.tpc_call_timeout);
  if (!config_.witnesses.empty()) node_->set_coordinator_mirrors(config_.witnesses);
  seed_objects();
  register_control_services();
}

NodeDaemon::~NodeDaemon() = default;

void NodeDaemon::seed_objects() {
  Runtime& rt = node_->runtime();
  for (const auto& [key, initial] : config_.ints) {
    auto obj = std::make_unique<RecoverableInt>(rt, int_uid(key));
    // First boot: nothing durable under this uid yet — commit the initial
    // value so restarts (and peers' expectations) see it. Later boots
    // re-bind and activate from what the log replayed.
    if (!rt.default_store().read(obj->uid()).has_value()) {
      AtomicAction seed(rt);
      seed.begin();
      obj->set(initial);
      if (seed.commit() != Outcome::Committed) {
        throw std::runtime_error("seeding int " + std::to_string(key) + " failed to commit");
      }
    }
    node_->host(*obj);
    ints_.emplace(key, std::move(obj));
  }
}

void NodeDaemon::register_control_services() {
  RpcEndpoint& rpc = node_->rpc();

  rpc.register_service("ctl.ping", [this](ByteBuffer&) {
    ByteBuffer out;
    out.pack_u64(static_cast<std::uint64_t>(::getpid()));
    out.pack_u32(config_.id);
    return out;
  });

  rpc.register_service("ctl.peek", [this](ByteBuffer& in) {
    const std::uint32_t key = in.unpack_u32();
    ByteBuffer out;
    if (auto state = node_->runtime().default_store().read(int_uid(key))) {
      ByteBuffer cursor = ByteBuffer::reader(state->state());
      out.pack_bool(true);
      out.pack_i64(cursor.unpack_i64());
    } else {
      out.pack_bool(false);
      out.pack_i64(0);
    }
    return out;
  });

  // Coordinate a multi-leg transfer here: the caller is the chaos driver,
  // the transaction is real — remote legs travel through obj.invoke / tx.*
  // exactly as application traffic would.
  rpc.register_service("ctl.apply", [this](ByteBuffer& in) {
    std::vector<TransferLeg> legs;
    const std::uint32_t n = in.unpack_u32();
    legs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      TransferLeg leg;
      leg.node = in.unpack_u32();
      leg.key = in.unpack_u32();
      leg.delta = in.unpack_i64();
      legs.push_back(leg);
    }

    AtomicAction action(node_->runtime());
    action.begin();
    const Uid uid = action.uid();
    bool committed = false;
    std::string error;
    try {
      for (const TransferLeg& leg : legs) {
        if (leg.node == config_.id) {
          const auto it = ints_.find(leg.key);
          if (it == ints_.end()) throw std::runtime_error("no local int " + std::to_string(leg.key));
          it->second->add(leg.delta);
        } else {
          RemoteInt remote(*node_, leg.node, int_uid(leg.key));
          remote.add(leg.delta);
        }
      }
      committed = action.commit() == Outcome::Committed;
    } catch (const std::exception& e) {
      error = e.what();
      action.abort();
    }

    ByteBuffer out;
    out.pack_bool(committed);
    out.pack_uid(uid);
    out.pack_string(error);
    return out;
  });

  rpc.register_service("ctl.committed", [this](ByteBuffer& in) {
    const Uid action = in.unpack_uid();
    ByteBuffer out;
    out.pack_bool(CoordinatorLogParticipant::committed(node_->runtime(), action));
    return out;
  });

  rpc.register_service("ctl.witness", [this](ByteBuffer& in) {
    const Uid action = in.unpack_uid();
    ByteBuffer out;
    out.pack_bool(WitnessLog::has_decision(node_->runtime(), action));
    return out;
  });

  rpc.register_service("ctl.indoubt", [this](ByteBuffer&) {
    ByteBuffer out;
    out.pack_u64(node_->in_doubt_count());
    return out;
  });

  rpc.register_service("ctl.check", [this](ByteBuffer&) {
    ConsistencyReport report;
    consistency::check_node(*node_, report);
    return pack_report(report);
  });

  rpc.register_service("ctl.drop_peer", [this](ByteBuffer& in) {
    const NodeId peer = in.unpack_u32();
    const bool drop = in.unpack_bool();
    transport_->set_peer_drop(peer, drop);
    if (!drop) node_->rpc().reset_peer_health(peer);  // healed: next call goes out now
    return ByteBuffer{};
  });

  rpc.register_service("ctl.kick", [this](ByteBuffer&) {
    node_->kick_recovery();
    return ByteBuffer{};
  });

  // mode 0: die by SIGKILL inside the window — the real thing, no unwind,
  // no flush. mode 1: start dropping `peer`'s frames inside the window — a
  // partition that opens mid-protocol.
  rpc.register_service("ctl.arm", [this](ByteBuffer& in) {
    const std::string point = in.unpack_string();
    const std::uint32_t skip = in.unpack_u32();
    const std::uint8_t mode = in.unpack_u8();
    const NodeId peer = in.unpack_u32();
    if (mode == 0) {
      crash_points::arm(point, skip, [] { ::raise(SIGKILL); });
    } else {
      UdpTransport* transport = transport_.get();
      crash_points::arm(point, skip, [transport, peer] { transport->set_peer_drop(peer, true); });
    }
    return ByteBuffer{};
  });

  rpc.register_service("ctl.shutdown", [this](ByteBuffer&) {
    request_shutdown();
    return ByteBuffer{};
  });
}

void NodeDaemon::run_until_shutdown() {
  std::unique_lock lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void NodeDaemon::request_shutdown() {
  {
    const std::lock_guard lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

}  // namespace mca::apps
