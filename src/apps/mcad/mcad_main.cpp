// mcad — one cluster node as an OS process.
//
// Usage:
//   mcad --id 1 --data /var/lib/mca/node1 \
//        --peers "1=127.0.0.1:9001,2=127.0.0.1:9002,3=127.0.0.1:9003" \
//        [--store wal|file|memory] [--witnesses "2,3"] \
//        [--ints "10=100,11=0"] [--workers 8] \
//        [--invoke-timeout-ms 4000] [--tpc-timeout-ms 1000]
//
// The process serves until ctl.shutdown arrives (exit 0) or it is killed.
// README "Running a real cluster" walks through a full example.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "apps/mcad/daemon.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id N --data DIR --peers \"id=host:port,...\"\n"
               "          [--store wal|file|memory] [--witnesses \"id,...\"]\n"
               "          [--ints \"key=initial,...\"] [--workers N]\n"
               "          [--invoke-timeout-ms N] [--tpc-timeout-ms N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mca;
  using namespace mca::apps;

  DaemonConfig config;
  bool have_id = false;
  bool have_peers = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--id") {
        config.id = static_cast<NodeId>(std::stoul(value()));
        have_id = true;
      } else if (arg == "--data") {
        config.data_dir = value();
      } else if (arg == "--peers") {
        config.peers = parse_peer_map(value());
        have_peers = true;
      } else if (arg == "--store") {
        const std::string name = value();
        const auto backend = store_backend_from_string(name);
        if (!backend) throw std::invalid_argument("unknown store backend '" + name + "'");
        config.backend = *backend;
      } else if (arg == "--witnesses") {
        config.witnesses = parse_node_list(value());
      } else if (arg == "--ints") {
        config.ints = parse_int_map(value());
      } else if (arg == "--workers") {
        config.rpc_workers = std::stoul(value());
      } else if (arg == "--invoke-timeout-ms") {
        config.invoke_timeout = std::chrono::milliseconds(std::stoul(value()));
      } else if (arg == "--tpc-timeout-ms") {
        config.tpc_call_timeout = std::chrono::milliseconds(std::stoul(value()));
      } else {
        std::fprintf(stderr, "mcad: unknown argument '%s'\n", arg.c_str());
        return usage(argv[0]);
      }
    }
    if (!have_id || !have_peers || config.data_dir.empty()) return usage(argv[0]);
    if (!config.peers.contains(config.id)) {
      std::fprintf(stderr, "mcad: --id %u is not in the peer map\n", config.id);
      return 2;
    }

    NodeDaemon daemon(std::move(config));
    std::fprintf(stderr, "mcad: node %u serving on port %u\n", daemon.node().id(),
                 daemon.transport().port_of(daemon.node().id()));
    daemon.run_until_shutdown();
    std::fprintf(stderr, "mcad: node %u shutting down\n", daemon.node().id());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcad: fatal: %s\n", e.what());
    return 1;
  }
}
