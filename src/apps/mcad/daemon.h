// NodeDaemon: one DistNode behind a real UDP transport, as a long-running
// OS process.
//
// mcad (the executable, mcad_main.cpp) is a thin argv wrapper around this
// class so tests can also run a daemon in-process. A daemon hosts a set of
// RecoverableInt objects with *deterministic* uids — int_uid(key) — so every
// process of a deployment (daemons and the test driver alike) can name an
// object without exchanging uids, and so a restarted daemon re-binds to the
// same durable records its predecessor wrote.
//
// Besides the ordinary data-plane services a DistNode registers (tx.*,
// obj.invoke, ...), the daemon adds a ctl.* control plane on the same RPC
// endpoint. That is what the multi-process chaos harness drives:
//
//   ctl.ping       liveness + pid
//   ctl.peek       durable value of one int, read from the store (no locks)
//   ctl.apply      run a multi-node transfer as a transaction coordinated
//                  here; replies with the outcome and the action uid
//   ctl.committed  does this node's coordinator log say `action` committed?
//   ctl.witness    does this node's witness log hold a decision for it?
//   ctl.indoubt    count of unresolved prepared markers
//   ctl.check      run the consistency checker on this node, reply the report
//   ctl.drop_peer  partition/heal one link at the socket layer
//   ctl.kick       force a recovery pass now (the "partition healed" hook)
//   ctl.arm        arm a crash point: kill this process with SIGKILL inside
//                  the window, or start dropping a peer's frames there (a
//                  partition that begins mid-protocol)
//   ctl.shutdown   clean exit (the graceful counterpart of SIGKILL)
//
// ctl.arm is the heart of the harness: unlike the in-process sweep (which
// unwinds CrashPointHit to a catcher), the armed action here is raise(
// SIGKILL) — the process dies for real, mid-window, with exactly the durable
// state that window implies, and recovery must cope with what is on disk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dist/node.h"
#include "net/udp_transport.h"
#include "objects/recoverable_int.h"
#include "sim/consistency_check.h"

namespace mca::apps {

// Deterministic uid of the daemon-hosted int `key`: the same (hi, lo) on
// every process, every boot.
[[nodiscard]] inline Uid int_uid(std::uint32_t key) {
  return Uid(0x6D6361'6F626A00ULL, key);  // "mcaobj" tag in the high half
}

struct DaemonConfig {
  NodeId id = 0;
  // Full deployment map (this node included); what UdpTransport binds/sends.
  std::unordered_map<NodeId, UdpAddress> peers;
  std::filesystem::path data_dir;
  StoreBackend backend = StoreBackend::Wal;
  // Witness nodes mirroring commit decisions this node coordinates.
  std::vector<NodeId> witnesses;
  // key → initial value. Objects are created durably on first boot and
  // re-bound (initial ignored) on every later one.
  std::map<std::uint32_t, std::int64_t> ints;
  std::size_t rpc_workers = 8;
  std::chrono::milliseconds invoke_timeout{4'000};
  std::chrono::milliseconds tpc_call_timeout{1'000};
};

// Parses "1=127.0.0.1:9001,2=127.0.0.1:9002" / "2,3" / "10=100,11=0".
// Throw std::invalid_argument on malformed input.
[[nodiscard]] std::unordered_map<NodeId, UdpAddress> parse_peer_map(const std::string& spec);
[[nodiscard]] std::vector<NodeId> parse_node_list(const std::string& spec);
[[nodiscard]] std::map<std::uint32_t, std::int64_t> parse_int_map(const std::string& spec);

// Wire helpers for ctl.check replies (shared with the driver side).
[[nodiscard]] ByteBuffer pack_report(const ConsistencyReport& report);
[[nodiscard]] ConsistencyReport unpack_report(ByteBuffer& in);

// One transfer leg of ctl.apply.
struct TransferLeg {
  NodeId node = 0;        // where the object lives
  std::uint32_t key = 0;  // int_uid(key)
  std::int64_t delta = 0;
};

[[nodiscard]] ByteBuffer pack_transfer(const std::vector<TransferLeg>& legs);

class NodeDaemon {
 public:
  explicit NodeDaemon(DaemonConfig config);
  ~NodeDaemon();

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  [[nodiscard]] DistNode& node() { return *node_; }
  [[nodiscard]] UdpTransport& transport() { return *transport_; }

  // Blocks until ctl.shutdown arrives. mcad_main's entire job.
  void run_until_shutdown();
  // Unblocks run_until_shutdown (also wired to ctl.shutdown).
  void request_shutdown();

 private:
  void seed_objects();
  void register_control_services();

  DaemonConfig config_;
  std::unique_ptr<UdpTransport> transport_;
  std::unique_ptr<DistNode> node_;
  std::map<std::uint32_t, std::unique_ptr<RecoverableInt>> ints_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace mca::apps
