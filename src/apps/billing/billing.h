// Billing / accounting of resource usage (paper §4 iii).
//
// "If a service is accessed by an action and the user of the service is to
// be charged, then the charging information should not be recovered if the
// action aborts." Charges are applied through top-level independent
// actions; an audit log records every charge alongside the balance.
#pragma once

#include "core/structures/independent_action.h"
#include "objects/recoverable_int.h"
#include "objects/recoverable_log.h"

namespace mca {

class BillingMeter {
 public:
  // `balance` accumulates charges; `audit` records one line per charge.
  BillingMeter(Runtime& rt, RecoverableInt& balance, RecoverableLog& audit)
      : rt_(rt), balance_(balance), audit_(audit) {}

  // Charges `amount` for `user` independent of the calling action's fate.
  // Returns false when the charge could not be made permanent.
  bool charge(const std::string& user, std::int64_t amount);

  // Total charged (runs its own read-only independent action).
  [[nodiscard]] std::int64_t total();

  [[nodiscard]] std::vector<std::string> audit_trail();

 private:
  Runtime& rt_;
  RecoverableInt& balance_;
  RecoverableLog& audit_;
};

}  // namespace mca
