#include "apps/billing/billing.h"

namespace mca {

bool BillingMeter::charge(const std::string& user, std::int64_t amount) {
  return IndependentAction::run(rt_, [&] {
           balance_.add(amount);
           audit_.append(user + ":" + std::to_string(amount));
         }) == Outcome::Committed;
}

std::int64_t BillingMeter::total() {
  std::int64_t value = 0;
  IndependentAction::run(rt_, [&] { value = balance_.value(); });
  return value;
}

std::vector<std::string> BillingMeter::audit_trail() {
  std::vector<std::string> entries;
  IndependentAction::run(rt_, [&] { entries = audit_.entries(); });
  return entries;
}

}  // namespace mca
