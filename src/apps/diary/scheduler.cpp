#include "apps/diary/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace mca {
namespace {

std::vector<std::size_t> default_narrow(const std::vector<std::size_t>& candidates,
                                        std::size_t /*round*/) {
  const std::size_t keep = std::max<std::size_t>(1, candidates.size() / 2);
  return {candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(keep)};
}

}  // namespace

MeetingScheduler::MeetingScheduler(Runtime& rt, std::vector<DiaryView*> group)
    : rt_(rt), group_(std::move(group)) {
  if (group_.empty()) throw std::invalid_argument("scheduler needs a non-empty group");
}

ScheduleResult MeetingScheduler::schedule(const std::string& title, std::size_t rounds,
                                          Narrow narrow) {
  if (!narrow) narrow = default_narrow;
  ScheduleResult result;
  const std::size_t horizon = group_.front()->slot_count();

  GlueGroup glue(rt_);
  glue.begin();
  std::vector<std::size_t> candidates;
  try {
    // I1: gather availability and lock every candidate time's slots.
    glue.run_constituent([&](GlueGroup::Constituent& c) {
      for (std::size_t t = 0; t < horizon; ++t) {
        const bool all_free = std::all_of(group_.begin(), group_.end(), [&](DiaryView* d) {
          return t < d->slot_count() && !d->slot(t).booked();
        });
        if (all_free) {
          candidates.push_back(t);
          for (DiaryView* d : group_) d->slot(t).glue_to(glue, c);
        }
      }
    });
    ++result.rounds_run;
    result.glued_after_round.push_back(glue.glued_count());
    if (candidates.empty()) throw std::runtime_error("no common free slot");

    // I2..I_{n-1}: narrow, re-passing survivors only.
    for (std::size_t round = 1; round + 1 < rounds && candidates.size() > 1; ++round) {
      std::vector<std::size_t> kept = narrow(candidates, round);
      if (kept.empty()) throw std::runtime_error("narrowing rejected every candidate");
      glue.run_constituent([&](GlueGroup::Constituent& c) {
        for (const std::size_t t : candidates) {
          const bool keep =
              std::find(kept.begin(), kept.end(), t) != kept.end();
          for (DiaryView* d : group_) {
            (void)d->slot(t).booked();  // examine (consume) the slot
            if (keep) {
              d->slot(t).glue_to(glue, c);
            } else {
              d->slot(t).unglue_from(glue);  // explicit for remote slots
            }
          }
        }
      });
      candidates = std::move(kept);
      ++result.rounds_run;
      result.glued_after_round.push_back(glue.glued_count());
    }

    // Final round: book the most preferred candidate everywhere; the rest
    // of the still-glued slots are examined and released.
    const std::size_t chosen = candidates.front();
    glue.run_constituent([&](GlueGroup::Constituent&) {
      for (const std::size_t t : candidates) {
        for (DiaryView* d : group_) {
          if (t == chosen) {
            d->slot(t).book(title);
          } else {
            (void)d->slot(t).booked();
            d->slot(t).unglue_from(glue);
          }
        }
      }
    });
    ++result.rounds_run;
    result.glued_after_round.push_back(glue.glued_count());
    glue.end();
    result.scheduled = true;
    result.chosen_time = chosen;
  } catch (const std::exception& e) {
    result.error = e.what();
    MCA_LOG(Info, "diary") << "scheduling failed: " << e.what();
    glue.abort();
  }
  return result;
}

}  // namespace mca
