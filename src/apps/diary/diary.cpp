#include "apps/diary/diary.h"

namespace mca {

bool DiarySlot::booked() const {
  setlock_throw(LockMode::Read);
  return booked_;
}

std::string DiarySlot::title() const {
  setlock_throw(LockMode::Read);
  return title_;
}

void DiarySlot::book(const std::string& title) {
  setlock_throw(LockMode::Write);
  if (booked_) throw std::logic_error("slot already booked: " + title_);
  modified();
  booked_ = true;
  title_ = title;
}

void DiarySlot::cancel() {
  setlock_throw(LockMode::Write);
  modified();
  booked_ = false;
  title_.clear();
}

void DiarySlot::save_state(ByteBuffer& out) const {
  out.pack_bool(booked_);
  out.pack_string(title_);
}

void DiarySlot::restore_state(ByteBuffer& in) {
  booked_ = in.unpack_bool();
  title_ = in.unpack_string();
}

Diary::Diary(Runtime& rt, std::string owner, std::size_t slot_count)
    : owner_(std::move(owner)) {
  slots_.reserve(slot_count);
  for (std::size_t i = 0; i < slot_count; ++i) {
    slots_.push_back(std::make_unique<DiarySlot>(rt));
  }
}

}  // namespace mca
