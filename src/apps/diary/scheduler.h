// Meeting scheduler over glued actions (paper §4 v, fig. 9).
//
// Round I1 locks every candidate slot and selects possibilities; each later
// round I_i narrows the candidate set, passing the surviving slots to
// I_{i+1} and releasing the rejected ones ("entries in diaries are not
// unnecessarily kept locked"). Every round is a top-level action for
// permanence, so the narrowing survives crashes of later rounds; the final
// round books the chosen slot in every group member's diary.
#pragma once

#include <functional>

#include "apps/diary/diary.h"
#include "core/structures/glued_action.h"

namespace mca {

struct ScheduleResult {
  bool scheduled = false;
  std::size_t chosen_time = 0;
  std::size_t rounds_run = 0;
  // Number of slots still glued after each round: the paper's shrinking
  // lock footprint, observable.
  std::vector<std::size_t> glued_after_round;
  std::string error;
};

class MeetingScheduler {
 public:
  // Narrowing policy: maps (current candidates, round index) to the kept
  // candidate times, most preferred first. The default keeps the earlier
  // half (at least one).
  using Narrow =
      std::function<std::vector<std::size_t>(const std::vector<std::size_t>&, std::size_t)>;

  // The group may mix local diaries and remote ones (dist/remote_diary.h).
  MeetingScheduler(Runtime& rt, std::vector<DiaryView*> group);

  // Runs up to `rounds` narrowing rounds and books the winner. Booked slots
  // and narrowing decisions are permanent per round; on failure everything
  // still glued is released and already-booked state is never left
  // inconsistent (booking happens atomically in the last round).
  ScheduleResult schedule(const std::string& title, std::size_t rounds, Narrow narrow = {});

 private:
  Runtime& rt_;
  std::vector<DiaryView*> group_;
};

}  // namespace mca
