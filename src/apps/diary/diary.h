// Personal diaries for the meeting-scheduler example (paper §4 v).
//
// "Each user has a personal diary object ... made up of diary entries (or
// slots) each of which can be locked separately." We realise per-slot
// locking by making every slot its own persistent object; a Diary is the
// collection of a user's slots over a horizon of discrete times.
#pragma once

#include <memory>
#include <vector>

#include "core/structures/glued_action.h"
#include "objects/lock_managed.h"

namespace mca {

// What the scheduler needs of a diary slot, wherever it lives: implemented
// by DiarySlot (local object) and RemoteSlot (dist/remote_diary.h), so the
// same scheduling protocol runs over local and distributed diaries.
class SlotApi {
 public:
  virtual ~SlotApi() = default;
  [[nodiscard]] virtual bool booked() const = 0;
  [[nodiscard]] virtual std::string title() const = 0;
  virtual void book(const std::string& title) = 0;
  virtual void cancel() = 0;

  // Keeps the slot locked past the running constituent's commit (fig. 9's
  // hand-over). Call from inside the constituent.
  virtual void glue_to(GlueGroup& glue, GlueGroup::Constituent& constituent) = 0;

  // Releases the group's transfer lock on a rejected slot mid-protocol.
  // Local slots are auto-released by the group's touched-but-not-repassed
  // policy, so the local implementation is a no-op; remote slots need the
  // explicit release.
  virtual void unglue_from(GlueGroup& glue) = 0;
};

class DiarySlot final : public LockManaged, public SlotApi {
 public:
  using LockManaged::LockManaged;

  [[nodiscard]] bool booked() const override;
  [[nodiscard]] std::string title() const override;

  // Books the slot; throws std::logic_error if already booked.
  void book(const std::string& title) override;
  void cancel() override;

  void glue_to(GlueGroup& glue, GlueGroup::Constituent& constituent) override {
    glue.pass_on(constituent, *this);
  }
  void unglue_from(GlueGroup&) override {}

  [[nodiscard]] std::string type_name() const override { return "DiarySlot"; }
  void save_state(ByteBuffer& out) const override;
  void restore_state(ByteBuffer& in) override;

 private:
  bool booked_ = false;
  std::string title_;
};

// What the scheduler needs of a whole diary.
class DiaryView {
 public:
  virtual ~DiaryView() = default;
  [[nodiscard]] virtual const std::string& owner() const = 0;
  [[nodiscard]] virtual std::size_t slot_count() const = 0;
  [[nodiscard]] virtual SlotApi& slot(std::size_t time) = 0;
};

class Diary final : public DiaryView {
 public:
  // A diary for `owner` with `slot_count` discrete times.
  Diary(Runtime& rt, std::string owner, std::size_t slot_count);

  [[nodiscard]] const std::string& owner() const override { return owner_; }
  [[nodiscard]] std::size_t slot_count() const override { return slots_.size(); }
  [[nodiscard]] DiarySlot& slot(std::size_t time) override { return *slots_.at(time); }
  [[nodiscard]] const DiarySlot& slot(std::size_t time) const { return *slots_.at(time); }

 private:
  std::string owner_;
  std::vector<std::unique_ptr<DiarySlot>> slots_;
};

}  // namespace mca
