// Wire framing for datagrams that leave the process.
//
// The simulated Network hands Datagram structs around in memory; a real
// transport has to flatten them. One UDP datagram carries exactly one frame:
//
//   [u32 magic 'MUF1'] [u32 from] [u32 to] [u32 flags (bit0 = is_reply)]
//   [string service]   [u64 request hi] [u64 request lo]
//   [bytes payload]    [u64 checksum]
//
// All integers are little-endian (ByteBuffer's encoding) and strings/bytes
// are u32-length-prefixed, so the bytes are identical on every host; the
// trailing checksum is datagram_checksum() over the decoded fields — the
// same FNV-1a digest the simulator stamps, now also endian-stable. A golden
// -bytes regression test pins the encoding (tests/test_network.cpp).
//
// Decode is defensive: frames come off a real socket, so a short buffer, a
// wrong magic, an impossible length prefix or a digest mismatch must never
// turn into an allocation or a handler dispatch. Malformed and corrupt are
// reported separately — transports count them apart, and only corruption
// (valid shape, wrong digest) is the "retransmission will mask it" case.
#pragma once

#include <span>
#include <vector>

#include "net/transport.h"

namespace mca::net {

inline constexpr std::uint32_t kFrameMagic = 0x3146554Du;  // "MUF1" little-endian

// Ceiling on one encoded frame. Far below the 64 KiB UDP payload limit so a
// frame always fits one datagram with headroom for IP options; anything
// larger is refused at send and at receive (oversize, not retried — a frame
// that cannot fit will never fit).
inline constexpr std::size_t kMaxFrameBytes = 60 * 1024;

enum class FrameDecode { Ok, Malformed, ChecksumMismatch };

// Flattens `d` (stamping the checksum field) into one wire frame.
[[nodiscard]] std::vector<std::byte> encode_frame(const Datagram& d);

// Parses `bytes` into `out`. Ok means shape and digest both check out;
// ChecksumMismatch means a well-formed frame whose content was damaged in
// flight (out holds the decoded fields); Malformed means the shape itself is
// wrong and `out` is unspecified.
[[nodiscard]] FrameDecode decode_frame(std::span<const std::byte> bytes, Datagram& out);

}  // namespace mca::net
