// Transport: the seam between the RPC layer and whatever carries its
// datagrams.
//
// The paper's communication model (§2) is an unreliable datagram service —
// messages may be lost, duplicated or corrupted; retransmission and
// at-most-once filtering live above it in RpcEndpoint. Everything the RPC
// layer needs from the carrier is this interface: attach a delivery handler
// for a local node id, send a datagram towards a node id, and reflect
// crash/restart ("a down node receives nothing") at the wire.
//
// Two implementations exist:
//
//   sim::Network (sim/network.h)   the deterministic in-process backend —
//                                  seeded loss/duplication/corruption/delay
//                                  injection, per-link partitions; every
//                                  pre-existing test runs on it unchanged.
//
//   UdpTransport (net/udp_transport.h)  real UDP sockets, one process per
//                                  node; frames cross machine boundaries in
//                                  the endian-stable encoding of net/frame.h
//                                  and are verified by the same FNV-1a
//                                  checksum the simulator stamps.
//
// Handlers run on the transport's delivery thread and must not block; nodes
// hand real work to their own executors (RpcEndpoint does exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/buffer.h"
#include "common/uid.h"

namespace mca {

using NodeId = std::uint32_t;

struct Datagram {
  NodeId from = 0;
  NodeId to = 0;
  std::string service;
  Uid request_id = Uid::nil();
  bool is_reply = false;
  ByteBuffer payload;
  // Wire checksum over header + payload; stamped by the transport's send,
  // verified at delivery. 0 = not yet stamped.
  std::uint64_t checksum = 0;
};

// FNV-1a over the datagram's identifying fields and payload bytes. Any
// single corrupted byte changes the digest. Multi-byte fields are mixed in
// little-endian byte order, so the digest of a given datagram is identical
// on every host — a frame checksummed on one machine verifies on another.
[[nodiscard]] std::uint64_t datagram_checksum(const Datagram& d);

class Transport {
 public:
  using Handler = std::function<void(Datagram)>;

  virtual ~Transport() = default;

  // Registers/replaces the delivery handler for local node `id` and marks it
  // up. The handler is invoked on the transport's delivery thread.
  virtual void attach(NodeId id, Handler handler) = 0;
  virtual void detach(NodeId id) = 0;

  // Fire-and-forget: the transport stamps the checksum and delivers the
  // datagram to `d.to`'s handler with whatever loss/delay the backend has.
  virtual void send(Datagram d) = 0;

  // Crash / restart of a local node as seen from the wire: a down node
  // receives nothing (messages already in flight to it are dropped).
  virtual void set_up(NodeId id, bool up) = 0;
  [[nodiscard]] virtual bool is_up(NodeId id) const = 0;
};

}  // namespace mca
