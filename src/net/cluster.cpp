#include "net/cluster.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "apps/mcad/daemon.h"

namespace mca::net {
namespace {

std::string join_ids(const std::vector<NodeId>& ids) {
  std::string out;
  for (const NodeId id : ids) {
    if (!out.empty()) out += ',';
    out += std::to_string(id);
  }
  return out;
}

std::string join_ints(const std::map<std::uint32_t, std::int64_t>& ints) {
  std::string out;
  for (const auto& [key, initial] : ints) {
    if (!out.empty()) out += ',';
    out += std::to_string(key) + "=" + std::to_string(initial);
  }
  return out;
}

std::string find_mcad_binary() {
  if (const char* env = std::getenv("MCAD_BIN"); env != nullptr && *env != '\0') return env;
  // Tests live in <build>/tests/, mcad in <build>/ — look next to our own
  // binary's parent.
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n > 0) {
    self[n] = '\0';
    const std::filesystem::path exe(self);
    for (const auto& candidate : {exe.parent_path().parent_path() / "mcad",
                                  exe.parent_path() / "mcad"}) {
      std::error_code ec;
      if (std::filesystem::exists(candidate, ec)) return candidate.string();
    }
  }
  return "./mcad";
}

}  // namespace

bool loopback_udp_available() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const bool ok = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
  ::close(fd);
  return ok;
}

std::uint16_t pick_free_udp_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      port = ntohs(bound.sin_port);
    }
  }
  ::close(fd);
  return port;
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  mcad_path_ = find_mcad_binary();
  std::filesystem::create_directories(config_.root);

  for (const ClusterNodeConfig& node : config_.nodes) {
    const std::uint16_t port = pick_free_udp_port();
    if (port == 0) throw std::runtime_error("no free loopback UDP port");
    peers_[node.id] = UdpAddress{"127.0.0.1", port};
  }
  const std::uint16_t driver_port = pick_free_udp_port();
  if (driver_port == 0) throw std::runtime_error("no free loopback UDP port");
  peers_[config_.driver_id] = UdpAddress{"127.0.0.1", driver_port};

  UdpTransportConfig tc;
  tc.peers = peers_;
  transport_ = std::make_unique<UdpTransport>(std::move(tc));
  rpc_ = std::make_unique<RpcEndpoint>(*transport_, config_.driver_id);

  for (const ClusterNodeConfig& node : config_.nodes) spawn(node.id);
  for (const ClusterNodeConfig& node : config_.nodes) {
    if (!wait_ready(node.id, std::chrono::milliseconds(10'000))) {
      throw std::runtime_error("node " + std::to_string(node.id) + " never became ready (log: " +
                               (config_.root / ("node" + std::to_string(node.id) + ".log")).string() +
                               ")");
    }
  }
}

Cluster::~Cluster() {
  try {
    shutdown_all();
  } catch (...) {
    // ProcessHandle destructors still kill + reap whatever is left.
  }
}

const ClusterNodeConfig& Cluster::node_config(NodeId node) const {
  for (const ClusterNodeConfig& n : config_.nodes) {
    if (n.id == node) return n;
  }
  throw std::invalid_argument("unknown cluster node " + std::to_string(node));
}

std::filesystem::path Cluster::data_dir(NodeId node) const {
  return config_.root / ("node" + std::to_string(node));
}

std::uint16_t Cluster::port_of(NodeId node) const {
  const auto it = peers_.find(node);
  return it == peers_.end() ? 0 : it->second.port;
}

void Cluster::spawn(NodeId node) {
  const ClusterNodeConfig& cfg = node_config(node);

  std::string peer_spec;
  for (const auto& [id, addr] : peers_) {
    if (!peer_spec.empty()) peer_spec += ',';
    peer_spec += std::to_string(id) + "=" + addr.host + ":" + std::to_string(addr.port);
  }

  std::vector<std::string> argv{
      mcad_path_,
      "--id", std::to_string(node),
      "--data", data_dir(node).string(),
      "--peers", peer_spec,
      "--store", std::string(to_string(config_.backend)),
      "--invoke-timeout-ms", std::to_string(config_.daemon_invoke_timeout.count()),
      "--tpc-timeout-ms", std::to_string(config_.daemon_tpc_timeout.count()),
  };
  if (!cfg.witnesses.empty()) {
    argv.push_back("--witnesses");
    argv.push_back(join_ids(cfg.witnesses));
  }
  if (!cfg.ints.empty()) {
    argv.push_back("--ints");
    argv.push_back(join_ints(cfg.ints));
  }

  std::filesystem::create_directories(data_dir(node));
  const std::string log = (config_.root / ("node" + std::to_string(node) + ".log")).string();
  processes_[node] = ProcessHandle::spawn(std::move(argv), log);
}

void Cluster::kill(NodeId node) {
  const auto it = processes_.find(node);
  if (it == processes_.end()) return;
  it->second.kill_hard();
  it->second.wait();
  processes_.erase(it);
}

void Cluster::restart(NodeId node) {
  kill(node);  // no-op when already dead
  spawn(node);
  forget_peer(node);
  if (!wait_ready(node, std::chrono::milliseconds(10'000))) {
    throw std::runtime_error("node " + std::to_string(node) + " did not come back");
  }
}

bool Cluster::alive(NodeId node) {
  const auto it = processes_.find(node);
  return it != processes_.end() && it->second.alive();
}

void Cluster::shutdown_all(std::chrono::milliseconds grace) {
  for (auto& [node, handle] : processes_) {
    if (!handle.alive()) continue;
    ByteBuffer empty;
    (void)call(node, "ctl.shutdown", std::move(empty), std::chrono::milliseconds(1'000));
  }
  for (auto& [node, handle] : processes_) {
    if (!handle.wait_for(grace)) {
      handle.kill_hard();
      handle.wait();
    }
  }
  processes_.clear();
}

RpcResult Cluster::call(NodeId node, const std::string& service, ByteBuffer args,
                        std::chrono::milliseconds timeout) {
  CallOptions options;
  options.timeout = timeout;
  return rpc_->call(node, service, std::move(args), options);
}

bool Cluster::ping(NodeId node, std::chrono::milliseconds timeout) {
  rpc_->reset_peer_health(node);  // a ping is an explicit "try again now"
  ByteBuffer empty;
  return call(node, "ctl.ping", std::move(empty), timeout).ok();
}

bool Cluster::wait_ready(NodeId node, std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (ping(node, std::chrono::milliseconds(500))) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

RpcFuture Cluster::apply_async(NodeId coordinator, const std::vector<mca::apps::TransferLeg>& legs,
                               std::chrono::milliseconds timeout) {
  CallOptions options;
  options.timeout = timeout;
  return rpc_->call_async(coordinator, "ctl.apply", mca::apps::pack_transfer(legs), options);
}

ApplyResult Cluster::apply(NodeId coordinator, const std::vector<mca::apps::TransferLeg>& legs,
                           std::chrono::milliseconds timeout) {
  const RpcResult r = apply_async(coordinator, legs, timeout).get();
  ApplyResult out;
  out.rpc_ok = r.ok();
  if (r.ok()) {
    ByteBuffer in = ByteBuffer::reader(r.payload);
    out.committed = in.unpack_bool();
    out.action = in.unpack_uid();
    out.error = in.unpack_string();
  } else {
    out.error = r.error;
  }
  return out;
}

std::optional<std::int64_t> Cluster::peek(NodeId node, std::uint32_t key) {
  ByteBuffer args;
  args.pack_u32(key);
  const RpcResult r = call(node, "ctl.peek", std::move(args), std::chrono::milliseconds(2'000));
  if (!r.ok()) return std::nullopt;
  ByteBuffer in = ByteBuffer::reader(r.payload);
  const bool present = in.unpack_bool();
  const std::int64_t value = in.unpack_i64();
  if (!present) return std::nullopt;
  return value;
}

std::optional<bool> Cluster::committed(NodeId node, const Uid& action) {
  ByteBuffer args;
  args.pack_uid(action);
  const RpcResult r =
      call(node, "ctl.committed", std::move(args), std::chrono::milliseconds(2'000));
  if (!r.ok()) return std::nullopt;
  ByteBuffer in = ByteBuffer::reader(r.payload);
  return in.unpack_bool();
}

std::optional<bool> Cluster::witness_has_decision(NodeId node, const Uid& action) {
  ByteBuffer args;
  args.pack_uid(action);
  const RpcResult r = call(node, "ctl.witness", std::move(args), std::chrono::milliseconds(2'000));
  if (!r.ok()) return std::nullopt;
  ByteBuffer in = ByteBuffer::reader(r.payload);
  return in.unpack_bool();
}

std::optional<std::uint64_t> Cluster::in_doubt(NodeId node) {
  ByteBuffer empty;
  const RpcResult r = call(node, "ctl.indoubt", std::move(empty), std::chrono::milliseconds(2'000));
  if (!r.ok()) return std::nullopt;
  ByteBuffer in = ByteBuffer::reader(r.payload);
  return in.unpack_u64();
}

bool Cluster::wait_no_in_doubt(NodeId node, std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    const auto n = in_doubt(node);
    if (n.has_value() && *n == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  return false;
}

std::optional<ConsistencyReport> Cluster::check(NodeId node) {
  ByteBuffer empty;
  const RpcResult r = call(node, "ctl.check", std::move(empty), std::chrono::milliseconds(5'000));
  if (!r.ok()) return std::nullopt;
  ByteBuffer in = ByteBuffer::reader(r.payload);
  return mca::apps::unpack_report(in);
}

void Cluster::drop_link(NodeId node, NodeId peer, bool drop) {
  ByteBuffer args;
  args.pack_u32(peer);
  args.pack_bool(drop);
  const RpcResult r =
      call(node, "ctl.drop_peer", std::move(args), std::chrono::milliseconds(2'000));
  if (!r.ok()) {
    throw std::runtime_error("ctl.drop_peer to node " + std::to_string(node) + " failed");
  }
}

void Cluster::kick_recovery(NodeId node) {
  ByteBuffer empty;
  (void)call(node, "ctl.kick", std::move(empty), std::chrono::milliseconds(2'000));
}

void Cluster::arm_kill(NodeId node, const std::string& point, unsigned skip) {
  ByteBuffer args;
  args.pack_string(point);
  args.pack_u32(skip);
  args.pack_u8(0);
  args.pack_u32(0);
  const RpcResult r = call(node, "ctl.arm", std::move(args), std::chrono::milliseconds(2'000));
  if (!r.ok()) {
    throw std::runtime_error("ctl.arm(kill) to node " + std::to_string(node) + " failed: " +
                             r.error);
  }
}

void Cluster::arm_drop(NodeId node, const std::string& point, NodeId peer, unsigned skip) {
  ByteBuffer args;
  args.pack_string(point);
  args.pack_u32(skip);
  args.pack_u8(1);
  args.pack_u32(peer);
  const RpcResult r = call(node, "ctl.arm", std::move(args), std::chrono::milliseconds(2'000));
  if (!r.ok()) {
    throw std::runtime_error("ctl.arm(drop) to node " + std::to_string(node) + " failed: " +
                             r.error);
  }
}

void Cluster::forget_peer(NodeId node) { rpc_->reset_peer_health(node); }

}  // namespace mca::net
