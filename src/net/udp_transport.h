// UdpTransport: the real-socket Transport backend.
//
// One UdpTransport serves one process. Its config names every node of the
// deployment (id → host:port); attach(id) binds the UDP socket for that id
// and starts a receive thread ("mca-udp-<id>"), so a node daemon attaches
// exactly one id while a test process may attach several loopback nodes.
// send() flattens the datagram with net/frame.h and ships it to the target's
// address; receive decodes, verifies the FNV-1a digest and hands the
// datagram to the attached handler on the receive thread — the same
// contract (and the same corruption-becomes-loss behaviour) as the
// simulated Network, so RpcEndpoint's retransmission, backoff and per-peer
// suspicion run unchanged on top.
//
// UDP is the right fit for the paper's model: the communication layer is
// *expected* to lose, duplicate and reorder; reliability lives in the RPC
// retransmission protocol above, and a kernel socket buffer overflowing
// under load is just one more loss the protocol already masks.
//
// Fault injection for the chaos harness and benches:
//   set_peer_drop(peer)     socket-layer partition — frames to and from
//                           `peer` are dropped at this process's socket
//                           boundary (outbound at send, inbound before
//                           dispatch), invisible to the remote end exactly
//                           like a dead link.
//   set_loss_probability    seeded random drop at send (loss bursts for
//                           retransmission benches).
//
// Oversized frames (> max_frame_bytes) are dropped at send and counted, not
// fragmented: a frame that cannot fit one datagram would never survive the
// path, and the RPC above surfaces the resulting timeout. Real MTU
// fragmentation is the kernel's business below us.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "net/frame.h"
#include "net/transport.h"

struct sockaddr_in;  // <netinet/in.h>; kept out of this header

namespace mca {

struct UdpAddress {
  std::string host = "127.0.0.1";  // numeric IPv4
  std::uint16_t port = 0;
};

struct UdpTransportConfig {
  // Every node of the deployment, local and remote. attach() binds the
  // address of its id; send() resolves the target's.
  std::unordered_map<NodeId, UdpAddress> peers;
  std::size_t max_frame_bytes = net::kMaxFrameBytes;
  // Injected send-side loss (bench/chaos); decided by a seeded RNG.
  double loss_probability = 0.0;
  std::uint64_t seed = 42;
  // Receive-poll granularity: how quickly detach()/destruction can stop a
  // receive thread that is sitting in poll() with no traffic.
  std::chrono::milliseconds poll_interval{50};
};

class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(UdpTransportConfig config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // Binds the socket configured for `id` and starts its receive thread.
  // Throws std::system_error when the bind fails (port taken, no address)
  // and std::invalid_argument for an id absent from the peer map.
  void attach(NodeId id, Handler handler) override;
  void detach(NodeId id) override;

  void send(Datagram d) override;

  // Local ids only: a down node's frames are dropped before dispatch (and
  // its sends suppressed), fail-silence as seen from the wire. Remote ids
  // are ignored — a real process cannot silence another machine.
  void set_up(NodeId id, bool up) override;
  [[nodiscard]] bool is_up(NodeId id) const override;

  // -- socket-layer fault injection -------------------------------------------

  void set_peer_drop(NodeId peer, bool drop);
  [[nodiscard]] bool peer_dropped(NodeId peer) const;
  void set_loss_probability(double p);

  struct Stats {
    std::uint64_t sent = 0;              // frames that reached sendto()
    std::uint64_t delivered = 0;         // frames dispatched to a handler
    std::uint64_t lost_injected = 0;     // send-side injected loss
    std::uint64_t dropped_partitioned = 0;  // peer-drop filter (both directions)
    std::uint64_t dropped_down = 0;      // local node down / not attached
    std::uint64_t oversize_dropped = 0;  // frame larger than max_frame_bytes
    std::uint64_t corrupt_dropped = 0;   // digest mismatch at receive
    std::uint64_t malformed_dropped = 0; // undecodable bytes at receive
    std::uint64_t send_errors = 0;       // sendto() failures
  };
  [[nodiscard]] Stats stats() const;

  // The port `id` is configured on (what the cluster launcher prints).
  [[nodiscard]] std::uint16_t port_of(NodeId id) const;

 private:
  struct Local {
    NodeId id = 0;
    int fd = -1;
    Handler handler;
    std::atomic<bool> up{true};
    std::atomic<bool> stopping{false};
    std::thread rx;
  };

  void receive_loop(Local& local);
  [[nodiscard]] bool resolve(NodeId id, ::sockaddr_in& out) const;

  UdpTransportConfig config_;
  mutable std::mutex mutex_;  // locals_ map shape, drops_, rng_, stats_
  std::unordered_map<NodeId, std::unique_ptr<Local>> locals_;
  std::unordered_set<NodeId> drops_;
  std::uint64_t rng_state_;
  double loss_probability_;
  Stats stats_;
  int sender_fd_ = -1;  // fallback when sending from an unattached id
};

}  // namespace mca
