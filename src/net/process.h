// ProcessHandle: a spawned OS process the chaos harness can really kill.
//
// The simulator models crashes by muting an in-process node; the multi-
// process harness needs the real thing — SIGKILL gives no destructor, no
// flush, no goodbye message, which is exactly the fail-silent model the
// recovery protocol claims to survive. spawn() fork/execs argv[0] with the
// given arguments (stdout/stderr optionally redirected to a log file);
// kill_hard() delivers SIGKILL; wait() reaps and reports how the process
// ended. The handle owns the pid: it is reaped at destruction (killing
// first if still alive) so a failing test never leaks daemons.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace mca::net {

struct ExitStatus {
  bool exited = false;    // normal exit (code below) vs signal death
  int code = 0;           // exit code when exited
  int signal = 0;         // terminating signal when !exited
};

class ProcessHandle {
 public:
  ProcessHandle() = default;
  // Spawns `argv` (argv[0] = executable path). When `log_path` is non-empty
  // the child's stdout+stderr are appended there. Throws std::system_error
  // when fork or the log redirect fails; an exec failure surfaces as the
  // child exiting 127.
  static ProcessHandle spawn(std::vector<std::string> argv, const std::string& log_path = "");

  ~ProcessHandle();
  ProcessHandle(ProcessHandle&& other) noexcept;
  ProcessHandle& operator=(ProcessHandle&& other) noexcept;
  ProcessHandle(const ProcessHandle&) = delete;
  ProcessHandle& operator=(const ProcessHandle&) = delete;

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool valid() const { return pid_ > 0; }

  // True while the process has not been reaped and is still running.
  [[nodiscard]] bool alive();

  // SIGKILL — no warning, no cleanup. Safe to call on an already-dead or
  // already-reaped process.
  void kill_hard();

  // Blocks until the process ends, reaps it, returns how it died. Returns
  // the cached status on repeat calls; nullopt for a never-spawned handle.
  std::optional<ExitStatus> wait();

  // wait() with a deadline: polls, returns nullopt when the process is
  // still running at the deadline (not reaped).
  std::optional<ExitStatus> wait_for(std::chrono::milliseconds timeout);

 private:
  pid_t pid_ = -1;
  std::optional<ExitStatus> status_;  // set once reaped
};

}  // namespace mca::net
