#include "net/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <system_error>
#include <thread>
#include <utility>

namespace mca::net {
namespace {

ExitStatus decode_wait_status(int raw) {
  ExitStatus s;
  if (WIFEXITED(raw)) {
    s.exited = true;
    s.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    s.exited = false;
    s.signal = WTERMSIG(raw);
  }
  return s;
}

}  // namespace

ProcessHandle ProcessHandle::spawn(std::vector<std::string> argv, const std::string& log_path) {
  if (argv.empty()) throw std::invalid_argument("spawn: empty argv");

  // Open the log in the parent so a bad path fails loudly here, not as a
  // silent exec-127 in the child.
  int log_fd = -1;
  if (!log_path.empty()) {
    log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd < 0) {
      throw std::system_error(errno, std::generic_category(), "open " + log_path);
    }
  }

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (std::string& arg : argv) c_argv.push_back(arg.data());
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    if (log_fd >= 0) ::close(log_fd);
    throw std::system_error(err, std::generic_category(), "fork");
  }

  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec.
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execv(c_argv[0], c_argv.data());
    _exit(127);  // exec failed
  }

  if (log_fd >= 0) ::close(log_fd);
  ProcessHandle handle;
  handle.pid_ = pid;
  return handle;
}

ProcessHandle::~ProcessHandle() {
  if (pid_ > 0 && !status_) {
    kill_hard();
    wait();
  }
}

ProcessHandle::ProcessHandle(ProcessHandle&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)), status_(std::move(other.status_)) {}

ProcessHandle& ProcessHandle::operator=(ProcessHandle&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !status_) {
      kill_hard();
      wait();
    }
    pid_ = std::exchange(other.pid_, -1);
    status_ = std::move(other.status_);
  }
  return *this;
}

bool ProcessHandle::alive() {
  if (pid_ <= 0 || status_) return false;
  int raw = 0;
  const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
  if (r == pid_) {
    status_ = decode_wait_status(raw);
    return false;
  }
  return r == 0;
}

void ProcessHandle::kill_hard() {
  if (pid_ > 0 && !status_) ::kill(pid_, SIGKILL);
}

std::optional<ExitStatus> ProcessHandle::wait() {
  if (pid_ <= 0) return std::nullopt;
  if (status_) return status_;
  int raw = 0;
  if (::waitpid(pid_, &raw, 0) == pid_) {
    status_ = decode_wait_status(raw);
  }
  return status_;
}

std::optional<ExitStatus> ProcessHandle::wait_for(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (!alive()) return status_ ? status_ : std::optional<ExitStatus>{};
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace mca::net
