#include "net/transport.h"

#include <array>

#include "common/checksum.h"

namespace mca {
namespace {

// Mix an integer into the digest as little-endian bytes regardless of host
// order: the wire digest must be byte-identical across machines now that
// frames cross real network boundaries (net/frame.h). On little-endian
// hosts this is exactly the raw-memory mix the simulator always did, so
// existing in-process digests are unchanged.
template <typename T>
void mix_le(Fnv1a64& h, T v) {
  std::array<unsigned char, sizeof(T)> bytes;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
  h.mix(bytes.data(), bytes.size());
}

}  // namespace

std::uint64_t datagram_checksum(const Datagram& d) {
  Fnv1a64 h;
  mix_le(h, d.from);
  mix_le(h, d.to);
  h.mix(d.service.data(), d.service.size());
  mix_le(h, d.request_id.hi());
  mix_le(h, d.request_id.lo());
  const unsigned char reply = d.is_reply ? 1 : 0;
  h.mix(&reply, sizeof reply);
  h.mix(d.payload.bytes().data(), d.payload.size());
  return h.digest();
}

}  // namespace mca
