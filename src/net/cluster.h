// Cluster: launch and drive a real multi-process deployment.
//
// The launcher picks loopback UDP ports, spawns one mcad process per
// configured node (each with its own data directory under `root`), joins the
// deployment itself as the *driver* node — an ordinary RpcEndpoint on a
// UdpTransport — and exposes typed wrappers over the daemons' ctl.* control
// plane. The chaos harness is built on exactly four verbs:
//
//   kill(n)       SIGKILL the daemon — no flush, no goodbye
//   restart(n)    spawn a fresh process on the same data directory (the WAL
//                 replay / snapshot reload path)
//   drop_link     make a daemon drop one peer's frames at the socket layer
//   apply(...)    run a real multi-node transaction coordinated at a daemon
//
// plus the observation side (peek/committed/witness/indoubt/check) the
// invariant checker reads through. Everything travels over real sockets;
// nothing here shares memory with a daemon.
//
// The mcad binary is located through $MCAD_BIN, else next to the calling
// test binary's parent directory (build/mcad), else ./mcad.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/node.h"
#include "net/process.h"
#include "net/udp_transport.h"
#include "sim/consistency_check.h"

namespace mca::apps {
struct TransferLeg;
}

namespace mca::net {

struct ClusterNodeConfig {
  NodeId id = 0;
  std::vector<NodeId> witnesses;              // coordinator-log mirrors
  std::map<std::uint32_t, std::int64_t> ints; // objects this node hosts
};

struct ClusterConfig {
  std::vector<ClusterNodeConfig> nodes;
  std::filesystem::path root;  // per-node data dirs + logs live underneath
  StoreBackend backend = StoreBackend::Wal;
  NodeId driver_id = 100;
  std::chrono::milliseconds daemon_invoke_timeout{4'000};
  std::chrono::milliseconds daemon_tpc_timeout{1'000};
};

// ctl.apply result as seen from the driver. rpc_ok == false means the
// coordinator never answered (killed mid-transaction, partitioned, ...);
// committed/action/error are then meaningless.
struct ApplyResult {
  bool rpc_ok = false;
  bool committed = false;
  Uid action = Uid::nil();
  std::string error;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // -- process control --------------------------------------------------------

  // SIGKILL + reap. The port stays reserved for a later restart().
  void kill(NodeId node);
  // Spawns a fresh daemon on the node's existing data directory and waits
  // until it answers ctl.ping. Throws on startup failure.
  void restart(NodeId node);
  [[nodiscard]] bool alive(NodeId node);
  // Asks every live daemon to exit cleanly; kills whatever does not comply
  // within the grace period. The destructor calls this.
  void shutdown_all(std::chrono::milliseconds grace = std::chrono::milliseconds(3'000));

  // -- control plane ----------------------------------------------------------

  [[nodiscard]] bool ping(NodeId node, std::chrono::milliseconds timeout);
  // Blocks until the daemon answers ctl.ping; false at the deadline.
  bool wait_ready(NodeId node, std::chrono::milliseconds deadline);

  ApplyResult apply(NodeId coordinator, const std::vector<mca::apps::TransferLeg>& legs,
                    std::chrono::milliseconds timeout = std::chrono::milliseconds(20'000));
  // Fire-and-forget variant for transactions whose coordinator is about to
  // die: the future completes with Timeout when the reply never comes.
  [[nodiscard]] RpcFuture apply_async(NodeId coordinator,
                                      const std::vector<mca::apps::TransferLeg>& legs,
                                      std::chrono::milliseconds timeout);

  // Durable value of int `key` at `node` (nullopt: no durable record, or the
  // daemon unreachable).
  [[nodiscard]] std::optional<std::int64_t> peek(NodeId node, std::uint32_t key);
  [[nodiscard]] std::optional<bool> committed(NodeId node, const Uid& action);
  [[nodiscard]] std::optional<bool> witness_has_decision(NodeId node, const Uid& action);
  [[nodiscard]] std::optional<std::uint64_t> in_doubt(NodeId node);
  // Polls ctl.indoubt until it reaches zero; false at the deadline.
  bool wait_no_in_doubt(NodeId node, std::chrono::milliseconds deadline);
  // ctl.check — the consistency checker running inside the daemon.
  [[nodiscard]] std::optional<ConsistencyReport> check(NodeId node);

  // Socket-layer partition: `node` drops frames from/to `peer` (heal with
  // drop = false, which also resets the daemon's suspicion of the peer).
  void drop_link(NodeId node, NodeId peer, bool drop);
  // Force a recovery pass now (after healing a partition).
  void kick_recovery(NodeId node);

  // Arm a crash point inside the daemon: the process SIGKILLs itself the
  // (skip+1)-th time execution reaches `point`.
  void arm_kill(NodeId node, const std::string& point, unsigned skip = 0);
  // Arm a partition instead: at the window, `node` starts dropping frames
  // from/to `peer` — a link that dies mid-protocol.
  void arm_drop(NodeId node, const std::string& point, NodeId peer, unsigned skip = 0);

  // Driver-side endpoint (custom calls, health introspection).
  [[nodiscard]] RpcEndpoint& rpc() { return *rpc_; }
  [[nodiscard]] UdpTransport& transport() { return *transport_; }
  // Forget driver-side suspicion of `node` (after kills and restarts).
  void forget_peer(NodeId node);

  [[nodiscard]] std::filesystem::path data_dir(NodeId node) const;
  [[nodiscard]] std::uint16_t port_of(NodeId node) const;

 private:
  void spawn(NodeId node);
  [[nodiscard]] const ClusterNodeConfig& node_config(NodeId node) const;
  [[nodiscard]] RpcResult call(NodeId node, const std::string& service, ByteBuffer args,
                               std::chrono::milliseconds timeout);

  ClusterConfig config_;
  std::unordered_map<NodeId, UdpAddress> peers_;  // daemons + driver
  std::string mcad_path_;
  std::unordered_map<NodeId, ProcessHandle> processes_;
  std::unique_ptr<UdpTransport> transport_;
  std::unique_ptr<RpcEndpoint> rpc_;
};

// True when this environment can bind loopback UDP sockets (some sandboxes
// cannot); net/chaos tests skip themselves when it is false.
[[nodiscard]] bool loopback_udp_available();

// Picks a currently-free loopback UDP port by binding port 0. The usual
// tiny race applies; fine for tests.
[[nodiscard]] std::uint16_t pick_free_udp_port();

}  // namespace mca::net
