#include "net/frame.h"

namespace mca::net {

std::vector<std::byte> encode_frame(const Datagram& d) {
  ByteBuffer out;
  out.pack_u32(kFrameMagic);
  out.pack_u32(d.from);
  out.pack_u32(d.to);
  out.pack_u32(d.is_reply ? 1u : 0u);
  out.pack_string(d.service);
  out.pack_u64(d.request_id.hi());
  out.pack_u64(d.request_id.lo());
  out.pack_bytes(d.payload.bytes());
  out.pack_u64(datagram_checksum(d));
  return out.data();
}

FrameDecode decode_frame(std::span<const std::byte> bytes, Datagram& out) {
  if (bytes.size() > kMaxFrameBytes) return FrameDecode::Malformed;
  ByteBuffer in = ByteBuffer::reader(bytes);
  std::uint64_t claimed = 0;
  try {
    if (in.unpack_u32() != kFrameMagic) return FrameDecode::Malformed;
    out.from = in.unpack_u32();
    out.to = in.unpack_u32();
    out.is_reply = (in.unpack_u32() & 1u) != 0;
    out.service = in.unpack_string();
    const std::uint64_t hi = in.unpack_u64();
    const std::uint64_t lo = in.unpack_u64();
    out.request_id = Uid(hi, lo);
    out.payload = ByteBuffer(in.unpack_bytes());
    claimed = in.unpack_u64();
  } catch (const BufferUnderflow&) {
    return FrameDecode::Malformed;
  }
  if (!in.exhausted()) return FrameDecode::Malformed;  // trailing junk
  out.checksum = datagram_checksum(out);
  return out.checksum == claimed ? FrameDecode::Ok : FrameDecode::ChecksumMismatch;
}

}  // namespace mca::net
