#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace mca {
namespace {

// xorshift64* — deterministic injected loss under a fixed seed.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

[[nodiscard]] int open_udp_socket() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(), "socket(AF_INET, SOCK_DGRAM)");
  }
  return fd;
}

}  // namespace

UdpTransport::UdpTransport(UdpTransportConfig config)
    : config_(std::move(config)),
      rng_state_(config_.seed | 1),
      loss_probability_(config_.loss_probability) {
  sender_fd_ = open_udp_socket();
}

UdpTransport::~UdpTransport() {
  std::vector<NodeId> ids;
  {
    const std::lock_guard lock(mutex_);
    ids.reserve(locals_.size());
    for (const auto& [id, local] : locals_) ids.push_back(id);
  }
  for (const NodeId id : ids) detach(id);
  if (sender_fd_ >= 0) ::close(sender_fd_);
}

bool UdpTransport::resolve(NodeId id, sockaddr_in& out) const {
  const auto it = config_.peers.find(id);
  if (it == config_.peers.end()) return false;
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(it->second.port);
  return ::inet_pton(AF_INET, it->second.host.c_str(), &out.sin_addr) == 1;
}

void UdpTransport::attach(NodeId id, Handler handler) {
  auto local = std::make_unique<Local>();
  local->id = id;
  local->handler = std::move(handler);

  {
    const std::lock_guard lock(mutex_);
    if (locals_.contains(id)) {
      throw std::invalid_argument("node " + std::to_string(id) + " already attached");
    }
    const auto it = config_.peers.find(id);
    if (it == config_.peers.end()) {
      throw std::invalid_argument("node " + std::to_string(id) + " not in the peer map");
    }

    local->fd = open_udp_socket();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(it->second.port);
    if (::inet_pton(AF_INET, it->second.host.c_str(), &addr.sin_addr) != 1) {
      ::close(local->fd);
      throw std::invalid_argument("bad address for node " + std::to_string(id) + ": " +
                                  it->second.host);
    }
    if (::bind(local->fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(local->fd);
      throw std::system_error(err, std::generic_category(),
                              "bind " + it->second.host + ":" + std::to_string(it->second.port));
    }
    // Port 0 asks the kernel for an ephemeral port; reflect the real one back
    // into the peer map so in-process peers (loopback tests) can reach us.
    if (it->second.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(local->fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        it->second.port = ntohs(bound.sin_port);
      }
    }

    Local& ref = *local;
    ref.rx = std::thread([this, &ref] { receive_loop(ref); });
    locals_.emplace(id, std::move(local));
  }
}

void UdpTransport::detach(NodeId id) {
  std::unique_ptr<Local> local;
  {
    const std::lock_guard lock(mutex_);
    const auto it = locals_.find(id);
    if (it == locals_.end()) return;
    local = std::move(it->second);
    locals_.erase(it);
  }
  local->stopping.store(true);
  if (local->rx.joinable()) local->rx.join();
  if (local->fd >= 0) ::close(local->fd);
}

void UdpTransport::receive_loop(Local& local) {
  // One spare byte past the cap distinguishes "exactly at the limit" from
  // "truncated oversize" without MSG_TRUNC portability games.
  std::vector<std::byte> buffer(config_.max_frame_bytes + 1);
  const int timeout_ms = static_cast<int>(config_.poll_interval.count());

  while (!local.stopping.load()) {
    pollfd pfd{local.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping

    const ssize_t n = ::recv(local.fd, buffer.data(), buffer.size(), 0);
    if (n <= 0) continue;

    if (static_cast<std::size_t>(n) > config_.max_frame_bytes) {
      const std::lock_guard lock(mutex_);
      ++stats_.oversize_dropped;
      continue;
    }

    Datagram d;
    const auto verdict =
        net::decode_frame(std::span(buffer.data(), static_cast<std::size_t>(n)), d);

    Handler* handler = nullptr;
    {
      const std::lock_guard lock(mutex_);
      if (verdict == net::FrameDecode::Malformed) {
        ++stats_.malformed_dropped;
        continue;
      }
      if (verdict == net::FrameDecode::ChecksumMismatch) {
        ++stats_.corrupt_dropped;  // damaged in flight: loss, retransmission masks it
        continue;
      }
      if (d.to != local.id) {
        ++stats_.malformed_dropped;  // misrouted frame
        continue;
      }
      if (drops_.contains(d.from)) {
        ++stats_.dropped_partitioned;  // inbound side of a socket-layer partition
        continue;
      }
      if (!local.up.load()) {
        ++stats_.dropped_down;
        continue;
      }
      ++stats_.delivered;
      handler = &local.handler;
    }
    // Dispatch outside the lock: the handler (RpcEndpoint) may send().
    (*handler)(std::move(d));
  }
}

void UdpTransport::send(Datagram d) {
  // All sends go through the shared sender socket: UDP delivery is addressed
  // by the peer map, not the source port, and the shared fd outlives every
  // detach() so a timer-driven retransmit can never race a closing socket.
  sockaddr_in target{};
  {
    const std::lock_guard lock(mutex_);
    const auto from_it = locals_.find(d.from);
    if (from_it != locals_.end() && !from_it->second->up.load()) {
      ++stats_.dropped_down;  // a crashed node is fail-silent
      return;
    }
    if (drops_.contains(d.to)) {
      ++stats_.dropped_partitioned;  // outbound side of a socket-layer partition
      return;
    }
    if (loss_probability_ > 0.0) {
      const double roll =
          static_cast<double>(next_rand(rng_state_) >> 11) * (1.0 / 9007199254740992.0);
      if (roll < loss_probability_) {
        ++stats_.lost_injected;
        return;
      }
    }
    if (!resolve(d.to, target)) {
      ++stats_.send_errors;  // unknown peer: nowhere to send, surfaces as loss
      return;
    }
  }

  const std::vector<std::byte> frame = net::encode_frame(d);
  if (frame.size() > config_.max_frame_bytes) {
    const std::lock_guard lock(mutex_);
    ++stats_.oversize_dropped;
    return;
  }

  const ssize_t n = ::sendto(sender_fd_, frame.data(), frame.size(), 0,
                             reinterpret_cast<const sockaddr*>(&target), sizeof target);
  const std::lock_guard lock(mutex_);
  if (n == static_cast<ssize_t>(frame.size())) {
    ++stats_.sent;
  } else {
    ++stats_.send_errors;  // kernel refused (buffer full, ...): just loss
  }
}

void UdpTransport::set_up(NodeId id, bool up) {
  const std::lock_guard lock(mutex_);
  const auto it = locals_.find(id);
  if (it != locals_.end()) it->second->up.store(up);
}

bool UdpTransport::is_up(NodeId id) const {
  const std::lock_guard lock(mutex_);
  const auto it = locals_.find(id);
  // Remote liveness is unknowable from here; the suspicion layer above owns
  // that judgement, so unattached ids read as up.
  return it == locals_.end() || it->second->up.load();
}

void UdpTransport::set_peer_drop(NodeId peer, bool drop) {
  const std::lock_guard lock(mutex_);
  if (drop) {
    drops_.insert(peer);
  } else {
    drops_.erase(peer);
  }
}

bool UdpTransport::peer_dropped(NodeId peer) const {
  const std::lock_guard lock(mutex_);
  return drops_.contains(peer);
}

void UdpTransport::set_loss_probability(double p) {
  const std::lock_guard lock(mutex_);
  loss_probability_ = p;
}

UdpTransport::Stats UdpTransport::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

std::uint16_t UdpTransport::port_of(NodeId id) const {
  const std::lock_guard lock(mutex_);
  const auto it = config_.peers.find(id);
  return it == config_.peers.end() ? 0 : it->second.port;
}

}  // namespace mca
