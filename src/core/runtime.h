// Runtime: the per-node bundle of services the action kernel needs.
//
// One Runtime corresponds to one node of the paper's system model: a lock
// manager, an ancestry registry (so a server can reason about remote
// callers' action hierarchies), a default object store for persistent
// objects created on this node, and the runtime spine — an Executor (the
// node's worker pool: shadow-batch prepares, async independent actions,
// recovery passes) plus a TimerService (the node's one timer thread: RPC
// retransmission, periodic recovery ticks). The distributed layer gives
// each simulated node its own Runtime; single-process programs just make
// one. Both spine services start their threads lazily, so a Runtime that
// never goes parallel costs no threads.
//
// Shutdown order (the destructor, via reverse member order) is the one
// documented sequence every subsystem relies on:
//   1. timers_ stops first — no callback can submit new work;
//   2. executor_ drains both lanes and joins — queued tasks still run and
//      may use the lock manager / stores below;
//   3. stores, lock manager, trace, ancestry go last.
#pragma once

#include <atomic>
#include <memory>

#include "common/event_trace.h"
#include "common/executor.h"
#include "common/timer_service.h"
#include "lock/lock_manager.h"
#include "storage/memory_store.h"

namespace mca {

// Aggregate action statistics for one runtime (node): populated by the
// action kernel, read by benchmarks, health checks and tests.
struct ActionStats {
  std::uint64_t begun = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t prepare_failures = 0;  // commits turned into aborts

  [[nodiscard]] std::uint64_t active() const { return begun - committed - aborted; }
};

class Runtime {
 public:
  // Uses an internal stable MemoryStore as the default object store.
  // `lock_stripes` sizes the lock manager's shard array (1 = the old
  // global-mutex behaviour, useful as a benchmark baseline).
  explicit Runtime(std::size_t lock_stripes = LockManager::kDefaultStripes);

  // Uses `store` (not owned) as the default object store.
  explicit Runtime(ObjectStore& store,
                   std::size_t lock_stripes = LockManager::kDefaultStripes);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] LockManager& lock_manager() { return lock_manager_; }
  [[nodiscard]] PathAncestry& ancestry() { return ancestry_; }
  [[nodiscard]] ObjectStore& default_store() { return *store_; }

  // The runtime spine: shared worker pool and timer thread (see header
  // comment for the shutdown contract).
  [[nodiscard]] Executor& executor() { return executor_; }
  [[nodiscard]] TimerService& timers() { return timers_; }

  // Event tracing (disabled by default; see common/event_trace.h).
  [[nodiscard]] EventTrace& trace() { return trace_; }

  [[nodiscard]] ActionStats action_stats() const {
    return ActionStats{begun_.load(), committed_.load(), aborted_.load(),
                       prepare_failures_.load()};
  }

  // Kernel hooks (called by AtomicAction).
  void note_begun() { begun_.fetch_add(1, std::memory_order_relaxed); }
  void note_committed() { committed_.fetch_add(1, std::memory_order_relaxed); }
  void note_aborted() { aborted_.fetch_add(1, std::memory_order_relaxed); }
  void note_prepare_failure() { prepare_failures_.fetch_add(1, std::memory_order_relaxed); }

 private:
  PathAncestry ancestry_;
  EventTrace trace_;
  LockManager lock_manager_;
  std::unique_ptr<MemoryStore> owned_store_;
  ObjectStore* store_;
  // Spine members are declared last ON PURPOSE: destruction runs timers_
  // then executor_ before anything they might reference dies.
  Executor executor_;
  TimerService timers_;
  std::atomic<std::uint64_t> begun_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> prepare_failures_{0};
};

inline Runtime::Runtime(std::size_t lock_stripes)
    : lock_manager_(ancestry_, lock_stripes),
      owned_store_(std::make_unique<MemoryStore>(StorageClass::Stable)),
      store_(owned_store_.get()) {
  lock_manager_.set_trace(&trace_);
}

inline Runtime::Runtime(ObjectStore& store, std::size_t lock_stripes)
    : lock_manager_(ancestry_, lock_stripes), store_(&store) {
  lock_manager_.set_trace(&trace_);
}

}  // namespace mca
