#include "core/structures/glued_action.h"

#include "objects/lock_managed.h"

namespace mca {

GlueGroup::GlueGroup(Runtime& rt) : GlueGroup(rt, ActionContext::current()) {}

GlueGroup::GlueGroup(Runtime& rt, AtomicAction* parent)
    : glue_(Colour::fresh("glue")),
      work_(Colour::fresh("work")),
      group_(rt, parent, ColourSet{glue_}) {}

void GlueGroup::begin() { group_.begin(); }

GlueGroup::Constituent GlueGroup::constituent() {
  auto action =
      std::make_unique<AtomicAction>(group_.runtime(), &group_, ColourSet{glue_, work_});
  action->set_lock_plan(LockPlan::single(work_));
  return Constituent(*this, std::move(action));
}

void GlueGroup::pass_on(Constituent& within, LockManaged& obj) {
  if (const LockOutcome o = within.action().lock_explicit(obj, LockMode::ExclusiveRead, glue_);
      o != LockOutcome::Granted) {
    throw LockFailure(o, obj.uid());
  }
  within.passed_.insert(obj.uid());
}

Outcome GlueGroup::run_constituent(const std::function<void(Constituent&)>& body) {
  Constituent c = constituent();
  c.begin();
  try {
    body(c);
  } catch (...) {
    c.abort();
    throw;
  }
  return c.commit();
}

void GlueGroup::Constituent::begin() { action_->begin(); }

Outcome GlueGroup::Constituent::commit() {
  // Which currently-glued objects did this constituent touch? Those it does
  // not pass on again are released once it has committed (fig. 9).
  std::vector<Uid> consumed;
  {
    const std::scoped_lock lock(group_->mutex_);
    LockManager& lm = action_->runtime().lock_manager();
    for (const Uid& uid : group_->glued_) {
      for (const LockEntry& e : lm.entries(uid)) {
        if (e.owner == action_->uid()) {
          consumed.push_back(uid);
          break;
        }
      }
    }
  }
  const Outcome outcome = action_->commit();
  if (outcome == Outcome::Committed) {
    const std::scoped_lock lock(group_->mutex_);
    LockManager& lm = action_->runtime().lock_manager();
    for (const Uid& uid : consumed) {
      if (!passed_.contains(uid)) {
        group_->glued_.erase(uid);
        lm.release_early(group_->group_.uid(), uid, group_->glue_, LockMode::ExclusiveRead);
      }
    }
    group_->glued_.insert(passed_.begin(), passed_.end());
  }
  return outcome;
}

void GlueGroup::Constituent::abort() {
  // The constituent's own locks (including its fresh XR transfer locks) are
  // discarded; whatever the group already carried stays glued, so the work
  // can be retried.
  action_->abort();
}

Outcome GlueGroup::end() {
  {
    const std::scoped_lock lock(mutex_);
    glued_.clear();
  }
  return group_.commit();
}

void GlueGroup::abort() {
  {
    const std::scoped_lock lock(mutex_);
    glued_.clear();
  }
  group_.abort();
}

std::size_t GlueGroup::glued_count() const {
  const std::scoped_lock lock(mutex_);
  return glued_.size();
}

}  // namespace mca
