// Serializing actions (paper §3.1, implemented per §5.3 / fig. 11).
//
// A serializing action is "atomic with respect to concurrency but not with
// respect to failures": its constituents behave as top-level actions for
// permanence (a committed constituent's effects survive even if the
// serializing action later aborts), while the locks the constituents release
// at commit are retained by the serializing action, so no outside action can
// interleave between constituents.
//
// Colouring (automatic, §6): the serializing action is coloured {S}; each
// constituent {S, W}, with the lock plan
//     write  ->  WRITE in W  +  EXCLUSIVE-READ in S
//     read   ->  READ in S
// where S, W are fresh colours. A constituent's W locks have no W-coloured
// ancestor, so its updates become permanent at its own commit; its S locks
// are inherited by the serializing action, which is a pure serializing
// mechanism (it performs no writes).
//
// Usage:
//   SerializingAction ser(rt);
//   ser.begin();
//   ser.run_constituent([&] { ...B... });
//   ser.run_constituent([&] { ...C... });
//   ser.end();        // or ser.abort(); B and C's effects survive either way
//
// Concurrent constituents (fig. 8, distributed make) use constituent() to
// obtain a configured child action and begin/commit it on another thread.
#pragma once

#include <functional>
#include <memory>

#include "core/atomic_action.h"

namespace mca {

class SerializingAction {
 public:
  // Parent is the current action of the constructing thread (usually none).
  explicit SerializingAction(Runtime& rt);
  SerializingAction(Runtime& rt, AtomicAction* parent);

  void begin();

  // Runs `body` inside a fresh constituent on this thread: commits on normal
  // return, aborts if `body` throws (the exception propagates).
  Outcome run_constituent(const std::function<void()>& body);

  // A configured constituent action for manual / cross-thread control. The
  // caller begins, runs and terminates it; it is parented to the serializing
  // action regardless of which thread it runs on.
  [[nodiscard]] std::unique_ptr<AtomicAction> constituent();

  // Terminates the serializing action, releasing the retained locks. end()
  // commits; abort() differs only in status reporting — committed
  // constituents' effects survive both (relaxed failure atomicity, §3.1).
  Outcome end();
  void abort();

  [[nodiscard]] AtomicAction& action() { return action_; }
  [[nodiscard]] Colour serial_colour() const { return serial_; }
  [[nodiscard]] Colour work_colour() const { return work_; }

 private:
  Colour serial_;
  Colour work_;
  AtomicAction action_;
};

}  // namespace mca
