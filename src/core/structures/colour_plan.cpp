#include "core/structures/colour_plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace mca {

StructureSpec StructureSpec::plain(std::string name, std::vector<StructureSpec> children) {
  return StructureSpec{Kind::Plain, std::move(name), 0, std::move(children)};
}

StructureSpec StructureSpec::serializing(std::string name, std::vector<StructureSpec> children) {
  return StructureSpec{Kind::Serializing, std::move(name), 0, std::move(children)};
}

StructureSpec StructureSpec::glued(std::string name, std::vector<StructureSpec> children) {
  return StructureSpec{Kind::Glued, std::move(name), 0, std::move(children)};
}

StructureSpec StructureSpec::independent(std::string name, std::size_t level,
                                         std::vector<StructureSpec> children) {
  return StructureSpec{Kind::Independent, std::move(name), level, std::move(children)};
}

namespace {

const char* kind_name(StructureSpec::Kind kind) {
  switch (kind) {
    case StructureSpec::Kind::Plain: return "plain";
    case StructureSpec::Kind::Serializing: return "serializing";
    case StructureSpec::Kind::Glued: return "glued";
    case StructureSpec::Kind::Independent: return "independent";
  }
  return "?";
}

struct PlannerFrame {
  const StructureSpec* spec;
  ColourSet colours;
  // The colour a boundary at this frame hands to independence-seeking
  // descendants (minted lazily).
  std::optional<Colour> private_colour;
};

class Planner {
 public:
  std::vector<ColourAssignment> run(const StructureSpec& root) {
    visit(root, /*depth=*/0, ColourSet{Colour::plain()}, LockPlan::single(Colour::plain()),
          "top-level action", /*forced=*/std::nullopt);
    return std::move(assignments_);
  }

 private:
  struct Forced {
    ColourSet colours;
    LockPlan plan;
    std::string note;
  };

  // `forced` carries a colouring the parent structure decided for this node
  // (constituent roles). Only Plain nodes accept a forced colouring: deeper
  // structures nest inside an explicit Plain wrapper, which keeps every
  // structure node's own colour minting unambiguous.
  void visit(const StructureSpec& node, std::size_t depth, ColourSet inherited,
             LockPlan inherited_plan, std::string note, std::optional<Forced> forced) {
    if (forced && node.kind != StructureSpec::Kind::Plain) {
      throw std::invalid_argument(
          "'" + node.name +
          "': constituents of serializing/glued structures must be Plain nodes (wrap nested "
          "structures in a Plain child)");
    }

    switch (node.kind) {
      case StructureSpec::Kind::Plain: {
        const ColourSet colours = forced ? forced->colours : inherited;
        const LockPlan plan = forced ? forced->plan : inherited_plan;
        emit(node, depth, colours, plan, forced ? forced->note : note);
        recurse_children(node, depth, colours, plan);
        return;
      }
      case StructureSpec::Kind::Serializing:
      case StructureSpec::Kind::Glued: {
        const bool serializing = node.kind == StructureSpec::Kind::Serializing;
        const Colour transfer = Colour::fresh(serializing ? "ser" : "glue");
        const ColourSet colours{transfer};
        const LockPlan plan = LockPlan::single(transfer);
        emit(node, depth, colours, plan,
             serializing ? "serializing encloser (retains constituent locks)"
                         : "glue group (carries passed-on locks)");
        const Colour work = Colour::fresh("work");
        Forced role;
        role.colours = ColourSet{transfer, work};
        if (serializing) {
          role.plan.for_write = {{LockMode::Write, work}, {LockMode::ExclusiveRead, transfer}};
          role.plan.for_read = {{LockMode::Read, transfer}};
          role.plan.undo_colour = work;
          role.note = "constituent (top level in the work colour)";
        } else {
          role.plan = LockPlan::single(work);
          role.note = "glue constituent (pass_on adds XR in the glue colour)";
        }
        stack_.push_back(PlannerFrame{&node, colours, std::nullopt});
        for (const StructureSpec& child : node.children) {
          visit(child, depth + 1, colours, plan, role.note, role);
        }
        stack_.pop_back();
        return;
      }
      case StructureSpec::Kind::Independent: {
        if (node.level > stack_.size()) {
          throw std::invalid_argument("independence level " + std::to_string(node.level) +
                                      " of '" + node.name + "' exceeds its ancestor chain");
        }
        Colour colour = Colour::plain();
        if (node.level == 0) {
          colour = Colour::fresh("indep");
          note = "top-level independent";
        } else {
          // Tied to the boundary ancestor `level` frames up; everything
          // below it may abort without undoing this node.
          PlannerFrame& boundary = stack_[stack_.size() - node.level];
          if (!boundary.private_colour) {
            boundary.private_colour = Colour::fresh("priv");
            // The boundary's colour set grows; patch the emitted row.
            for (ColourAssignment& a : assignments_) {
              if (a.name == boundary.spec->name) {
                a.colours = a.colours.with(*boundary.private_colour);
                a.private_colours = a.private_colours.with(*boundary.private_colour);
              }
            }
            boundary.colours = boundary.colours.with(*boundary.private_colour);
          }
          colour = *boundary.private_colour;
          note = "level-" + std::to_string(node.level) + " independent (boundary: " +
                 boundary.spec->name + ")";
        }
        const ColourSet colours{colour};
        const LockPlan plan = LockPlan::single(colour);
        emit(node, depth, colours, plan, note);
        recurse_children(node, depth, colours, plan);
        return;
      }
    }
  }

  void recurse_children(const StructureSpec& node, std::size_t depth, const ColourSet& colours,
                        const LockPlan& plan) {
    stack_.push_back(PlannerFrame{&node, colours, std::nullopt});
    for (const StructureSpec& child : node.children) {
      visit(child, depth + 1, colours, plan, "nested action", std::nullopt);
    }
    stack_.pop_back();
  }

  void emit(const StructureSpec& node, std::size_t depth, const ColourSet& colours,
            const LockPlan& plan, const std::string& note) {
    assignments_.push_back(
        ColourAssignment{node.name, node.kind, depth, colours, ColourSet{}, plan, note});
  }

  std::vector<ColourAssignment> assignments_;
  std::vector<PlannerFrame> stack_;
};

}  // namespace

ColourPlan ColourPlan::plan(const StructureSpec& spec) {
  ColourPlan out;
  Planner planner;
  out.assignments_ = planner.run(spec);
  return out;
}

const ColourAssignment& ColourPlan::assignment_of(const std::string& name) const {
  auto it = std::find_if(assignments_.begin(), assignments_.end(),
                         [&](const ColourAssignment& a) { return a.name == name; });
  if (it == assignments_.end()) {
    throw std::out_of_range("no assignment for node '" + name + "'");
  }
  return *it;
}

namespace {

// Walks spec and assignment rows in the same depth-first order, applying
// the §5 checks.
void validate_node(const StructureSpec& node,
                   const std::unordered_map<std::string, const ColourAssignment*>& by_name,
                   const std::vector<const StructureSpec*>& ancestors,
                   std::vector<ColourPlanError>& errors) {
  auto self_it = by_name.find(node.name);
  if (self_it == by_name.end()) {
    errors.push_back({node.name, "no colour assignment for this node"});
    return;
  }
  const ColourAssignment& self = *self_it->second;

  auto colours_of = [&](const StructureSpec* n) -> const ColourSet* {
    auto it = by_name.find(n->name);
    return it == by_name.end() ? nullptr : &it->second->colours;
  };

  switch (node.kind) {
    case StructureSpec::Kind::Plain: {
      if (!ancestors.empty()) {
        if (const ColourSet* parent = colours_of(ancestors.back())) {
          // Classical nesting needs the child to cover the parent's colours
          // only when the parent is itself plain (structure children have
          // role-specific colourings checked below).
          if (ancestors.back()->kind == StructureSpec::Kind::Plain) {
            const ColourAssignment& parent_row = *by_name.at(ancestors.back()->name);
            for (const Colour c : *parent) {
              // Boundary private colours are deliberately not inherited.
              if (parent_row.private_colours.contains(c)) continue;
              if (!self.colours.contains(c)) {
                errors.push_back(
                    {node.name, "plain child lacks parent colour " + c.name()});
              }
            }
          }
        }
      }
      break;
    }
    case StructureSpec::Kind::Serializing:
    case StructureSpec::Kind::Glued: {
      if (self.colours.size() != 1) {
        errors.push_back({node.name, "structure encloser must hold exactly one colour"});
        break;
      }
      const Colour transfer = self.colours.primary();
      for (const StructureSpec& child : node.children) {
        const ColourSet* child_colours = colours_of(&child);
        if (child_colours == nullptr) continue;
        if (!child_colours->contains(transfer)) {
          errors.push_back({child.name, "constituent does not share the transfer colour " +
                                            transfer.name()});
        }
        for (const Colour c : *child_colours) {
          if (c != transfer && self.colours.contains(c)) {
            errors.push_back(
                {node.name, "encloser possesses constituent work colour " + c.name() +
                                " (constituents would lose top-level permanence)"});
          }
        }
        // The work colour must not appear above the encloser either.
        for (const StructureSpec* ancestor : ancestors) {
          const ColourSet* up = colours_of(ancestor);
          if (up == nullptr) continue;
          for (const Colour c : *child_colours) {
            if (c != transfer && up->contains(c)) {
              errors.push_back({child.name, "work colour " + c.name() +
                                                " is held by ancestor " + ancestor->name});
            }
          }
        }
      }
      break;
    }
    case StructureSpec::Kind::Independent: {
      // Independent of the (level-1) nearest enclosing actions (all of
      // them when level==0): no shared colours with those.
      const std::size_t skip = node.level == 0 ? ancestors.size() : node.level - 1;
      for (std::size_t i = 0; i < skip && i < ancestors.size(); ++i) {
        const StructureSpec* near = ancestors[ancestors.size() - 1 - i];
        const ColourSet* up = colours_of(near);
        if (up == nullptr) continue;
        for (const Colour c : self.colours) {
          if (up->contains(c)) {
            errors.push_back({node.name, "shares colour " + c.name() + " with " + near->name +
                                             " it should be independent of"});
          }
        }
      }
      if (node.level > 0 && node.level <= ancestors.size()) {
        const StructureSpec* boundary = ancestors[ancestors.size() - node.level];
        const ColourSet* up = colours_of(boundary);
        bool shared = false;
        if (up != nullptr) {
          for (const Colour c : self.colours) shared = shared || up->contains(c);
        }
        if (!shared) {
          errors.push_back({node.name, "does not share a colour with its boundary " +
                                           boundary->name});
        }
      }
      break;
    }
  }

  auto next_ancestors = ancestors;
  next_ancestors.push_back(&node);
  for (const StructureSpec& child : node.children) {
    validate_node(child, by_name, next_ancestors, errors);
  }
}

}  // namespace

std::vector<ColourPlanError> ColourPlan::validate(
    const StructureSpec& spec, const std::vector<ColourAssignment>& assignments) {
  std::unordered_map<std::string, const ColourAssignment*> by_name;
  for (const ColourAssignment& a : assignments) by_name[a.name] = &a;
  std::vector<ColourPlanError> errors;
  validate_node(spec, by_name, {}, errors);
  return errors;
}

std::string ColourPlan::to_string() const {
  std::ostringstream os;
  for (const ColourAssignment& a : assignments_) {
    os << std::string(a.depth * 2, ' ') << a.name << " [" << kind_name(a.kind) << "] "
       << a.colours.to_string() << " — " << a.note << '\n';
  }
  return os.str();
}

}  // namespace mca
