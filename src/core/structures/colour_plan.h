// Automatic colour assignment from structure descriptions (paper §6).
//
// "The approach that we are adopting in our research is to let the
// application builder think in terms of the action structures of section 3
// and to generate colour assignments automatically, thus ensuring that
// coloured actions are used in a controlled manner."
//
// The structure classes (SerializingAction, GlueGroup, IndependentAction)
// do this implicitly at run time. This module exposes the same assignment
// as *data*: a StructureSpec describes a tree of intended structures, and
// plan() computes every node's ColourSet and LockPlan — useful for
// inspecting, persisting, or validating a colouring before running it, and
// for driving hand-coloured AtomicAction systems from declarative input.
// validate() checks an assignment against the §5 rules the figures rely
// on, catching the classic mistakes (an encloser sharing the constituents'
// work colour, an "independent" child sharing a colour with its invoker...).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/atomic_action.h"

namespace mca {

// One node of an intended action structure.
struct StructureSpec {
  enum class Kind {
    Plain,        // conventional nested action: inherits the parent colours
    Serializing,  // fig. 11 encloser; children become constituents
    Glued,        // fig. 12 group; children become glue constituents
    Independent,  // fig. 13/15; `level` picks the *boundary* ancestor the
                  // node's fate is tied to: 0 = none (fully top-level
                  // independent), 1 = parent, 2 = grandparent (fig. 15's E
                  // inside B inside A is level 2), ...
  };

  Kind kind = Kind::Plain;
  std::string name;       // must be unique within a spec (used as the key)
  std::size_t level = 0;  // Independent only
  std::vector<StructureSpec> children;

  static StructureSpec plain(std::string name, std::vector<StructureSpec> children = {});
  static StructureSpec serializing(std::string name, std::vector<StructureSpec> children);
  static StructureSpec glued(std::string name, std::vector<StructureSpec> children);
  static StructureSpec independent(std::string name, std::size_t level = 0,
                                   std::vector<StructureSpec> children = {});
};

// The computed assignment for one node.
struct ColourAssignment {
  std::string name;
  StructureSpec::Kind kind = StructureSpec::Kind::Plain;
  std::size_t depth = 0;
  ColourSet colours;
  // Colours minted on this node purely as independence boundaries
  // (fig. 15's "blue" on A): descendants do not inherit them, so the
  // validator's classical-nesting check exempts them.
  ColourSet private_colours;
  LockPlan lock_plan;
  std::string note;  // human-readable role description
};

struct ColourPlanError {
  std::string node;
  std::string message;
};

class ColourPlan {
 public:
  // Computes colour assignments for every node of `spec` (root first,
  // depth-first order). Throws std::invalid_argument for impossible specs
  // (e.g. an Independent level deeper than its ancestor chain).
  static ColourPlan plan(const StructureSpec& spec);

  [[nodiscard]] const std::vector<ColourAssignment>& assignments() const {
    return assignments_;
  }
  [[nodiscard]] const ColourAssignment& assignment_of(const std::string& name) const;

  // Checks the assignment against the §5 well-formedness rules:
  //  * a serializing/glue encloser must not possess its constituents' work
  //    colour (otherwise constituents are not top level for permanence);
  //  * every constituent must share the encloser's transfer colour
  //    (otherwise the encloser cannot retain its locks);
  //  * an independent node must share no colour with the actions it is
  //    independent of;
  //  * a plain child must possess every colour of its parent (classical
  //    nesting).
  // Returns the violations found (empty = well formed). A plan produced by
  // plan() always validates; the entry point exists to vet hand-made or
  // edited assignments.
  [[nodiscard]] static std::vector<ColourPlanError> validate(
      const StructureSpec& spec, const std::vector<ColourAssignment>& assignments);
  [[nodiscard]] std::vector<ColourPlanError> validate(const StructureSpec& spec) const {
    return validate(spec, assignments_);
  }

  // Pretty-printed table of the assignment.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<ColourAssignment> assignments_;
};

}  // namespace mca
