// Top-level and n-level independent actions (paper §3.3, §5.5-5.6,
// figs. 7, 13, 14, 15).
//
// An independent action is invoked from inside another action but commits or
// aborts on its own: colouring it with colours disjoint from the invoker's
// makes its locks and updates ignore the invoker's fate. Two degrees:
//
//   * top_level(): a fresh colour nobody else has — the action's effects are
//     permanent at its own commit, whatever any ancestor does (fig. 13);
//   * up_to(ancestor): the ancestor's private colour — the action's effects
//     survive the abort of everything *below* that ancestor, but are undone
//     if the ancestor itself aborts (second/n-level independence, fig. 15:
//     E coloured blue survives B's abort but not A's).
//
// Invocation is synchronous (the invoker continues after the independent
// action terminates, fig. 7a) or asynchronous (fig. 7b) — the body rides the
// runtime executor's blocking lane rather than a freshly spawned thread, so
// a hot loop of async spawns reuses warm workers. Asynchronous independents
// are structurally children of the invoker, so the invoker must join() them
// before it terminates — the same completion rule the rest of the kernel
// enforces for concurrent children.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "core/atomic_action.h"

namespace mca {

// Degree of independence for an invoked action.
class Independence {
 public:
  // Fully top-level: a fresh private colour.
  static Independence top_level() { return Independence(nullptr); }

  // Independent of every action strictly below `ancestor`; tied to
  // `ancestor`'s own fate (its private colour).
  static Independence up_to(AtomicAction& ancestor) { return Independence(&ancestor); }

  [[nodiscard]] Colour resolve() const {
    return boundary_ != nullptr ? boundary_->private_colour() : Colour::fresh("indep");
  }

 private:
  explicit Independence(AtomicAction* boundary) : boundary_(boundary) {}
  AtomicAction* boundary_;
};

class IndependentAction {
 public:
  // Synchronously runs `body` as an independent action nested under the
  // current action (if any): commits on normal return, aborts if `body`
  // throws (the exception is swallowed; Aborted is returned, and the
  // invoker decides how to proceed — fig. 7a).
  static Outcome run(Runtime& rt, const std::function<void()>& body,
                     Independence independence = Independence::top_level());

  // Handle to an asynchronous independent action. The handle and the task
  // share ownership of the completion state, so a handle outliving the
  // Runtime is safe: executor shutdown drains queued tasks, so by the time
  // the Runtime is gone the outcome has been published and join() just
  // reads it.
  class Async {
   public:
    Async(Async&&) = default;
    Async& operator=(Async&&) = default;
    ~Async() {
      if (state_) join();
    }

    // Blocks until the action has terminated and returns its outcome.
    Outcome join();

   private:
    friend class IndependentAction;
    struct State {
      std::mutex mutex;
      std::condition_variable done_cv;
      bool done = false;
      Outcome outcome = Outcome::Aborted;
    };
    explicit Async(std::shared_ptr<State> state) : state_(std::move(state)) {}

    std::shared_ptr<State> state_;
    bool joined_ = false;
    Outcome result_ = Outcome::Aborted;
  };

  // Asynchronously runs `body` as an independent child of the current
  // action (fig. 7b), on the runtime executor's blocking lane (the body may
  // block on locks or join its own children). If the lane cannot take the
  // task without risking a join() deadlock — every worker busy at the cap —
  // the body runs synchronously here instead; join() semantics are
  // identical either way. The invoker must join() the handle (or let it go
  // out of scope) before terminating itself.
  static Async spawn(Runtime& rt, std::function<void()> body,
                     Independence independence = Independence::top_level());
};

}  // namespace mca
