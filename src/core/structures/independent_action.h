// Top-level and n-level independent actions (paper §3.3, §5.5-5.6,
// figs. 7, 13, 14, 15).
//
// An independent action is invoked from inside another action but commits or
// aborts on its own: colouring it with colours disjoint from the invoker's
// makes its locks and updates ignore the invoker's fate. Two degrees:
//
//   * top_level(): a fresh colour nobody else has — the action's effects are
//     permanent at its own commit, whatever any ancestor does (fig. 13);
//   * up_to(ancestor): the ancestor's private colour — the action's effects
//     survive the abort of everything *below* that ancestor, but are undone
//     if the ancestor itself aborts (second/n-level independence, fig. 15:
//     E coloured blue survives B's abort but not A's).
//
// Invocation is synchronous (the invoker continues after the independent
// action terminates, fig. 7a) or asynchronous on its own thread (fig. 7b).
// Asynchronous independents are structurally children of the invoker, so the
// invoker must join() them before it terminates — the same completion rule
// the rest of the kernel enforces for concurrent children.
#pragma once

#include <functional>
#include <future>
#include <thread>

#include "core/atomic_action.h"

namespace mca {

// Degree of independence for an invoked action.
class Independence {
 public:
  // Fully top-level: a fresh private colour.
  static Independence top_level() { return Independence(nullptr); }

  // Independent of every action strictly below `ancestor`; tied to
  // `ancestor`'s own fate (its private colour).
  static Independence up_to(AtomicAction& ancestor) { return Independence(&ancestor); }

  [[nodiscard]] Colour resolve() const {
    return boundary_ != nullptr ? boundary_->private_colour() : Colour::fresh("indep");
  }

 private:
  explicit Independence(AtomicAction* boundary) : boundary_(boundary) {}
  AtomicAction* boundary_;
};

class IndependentAction {
 public:
  // Synchronously runs `body` as an independent action nested under the
  // current action (if any): commits on normal return, aborts if `body`
  // throws (the exception is swallowed; Aborted is returned, and the
  // invoker decides how to proceed — fig. 7a).
  static Outcome run(Runtime& rt, const std::function<void()>& body,
                     Independence independence = Independence::top_level());

  // Handle to an asynchronous independent action.
  class Async {
   public:
    Async(Async&&) = default;
    Async& operator=(Async&&) = default;
    ~Async() { join(); }

    // Blocks until the action has terminated and returns its outcome.
    Outcome join();

   private:
    friend class IndependentAction;
    Async(std::future<Outcome> outcome, std::thread thread)
        : outcome_(std::move(outcome)), thread_(std::move(thread)) {}

    std::future<Outcome> outcome_;
    std::thread thread_;
    bool joined_ = false;
    Outcome result_ = Outcome::Aborted;
  };

  // Asynchronously runs `body` as an independent child of the current
  // action on a new thread (fig. 7b). The invoker must join() the handle
  // (or let it go out of scope) before terminating itself.
  static Async spawn(Runtime& rt, std::function<void()> body,
                     Independence independence = Independence::top_level());
};

}  // namespace mca
