// Compensation scopes — the paper's future work (§3.4).
//
// "Once a top-level action commits, its effects can only be 'undone' by
// running one or more application specific compensating actions. Developing
// mechanisms for compensation within the framework proposed here is left as
// a topic for further research."
//
// This module supplies that mechanism. A CompensationScope brackets a piece
// of application work that launches top-level independent actions (bulletin
// posts, name-server updates, charges...). Each independent step registers
// a *compensator* alongside its forward body. If the scope completes, the
// compensators are discarded; if it is abandoned, they are executed in
// reverse order, each as its own top-level independent action — turning a
// sequence of permanent steps into a saga with application-level undo.
//
// Compensators must be semantic inverses of their forward steps (retract a
// posting, remove a binding, refund a charge); the framework guarantees
// ordering, at-most-once execution per registered step, and that a
// compensator failure does not stop the remaining ones (it is reported).
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "core/structures/independent_action.h"

namespace mca {

class CompensationScope {
 public:
  explicit CompensationScope(Runtime& rt) : rt_(rt) {}

  // Destructor compensates if neither complete() nor abandon() was called
  // (exception-safety: a scope unwound by a throw compensates).
  ~CompensationScope();

  CompensationScope(const CompensationScope&) = delete;
  CompensationScope& operator=(const CompensationScope&) = delete;

  // Runs `forward` as a top-level independent action; when it commits,
  // `compensator` is registered for potential rollback. Returns the forward
  // outcome (an aborted forward step registers nothing — it already had no
  // effect).
  Outcome step(const std::function<void()>& forward,
               std::function<void()> compensator);

  // Marks the scope successful: compensators are discarded.
  void complete();

  // Abandons the scope now: every registered compensator runs in reverse
  // order, each as an independent action. Returns how many compensators
  // committed.
  std::size_t abandon();

  [[nodiscard]] std::size_t pending_compensations() const;
  [[nodiscard]] bool settled() const { return settled_; }

 private:
  Runtime& rt_;
  mutable std::mutex mutex_;
  std::vector<std::function<void()>> compensators_;
  bool settled_ = false;
};

}  // namespace mca
