#include "core/structures/independent_action.h"

#include "common/logging.h"

namespace mca {
namespace {

Outcome run_body(AtomicAction& action, const std::function<void()>& body) {
  try {
    body();
  } catch (const std::exception& e) {
    MCA_LOG(Info, "independent") << "body threw (" << e.what() << "); aborting";
    action.abort();
    return Outcome::Aborted;
  }
  return action.commit();
}

}  // namespace

Outcome IndependentAction::run(Runtime& rt, const std::function<void()>& body,
                               Independence independence) {
  AtomicAction action(rt, ColourSet{independence.resolve()});
  action.begin();
  return run_body(action, body);
}

IndependentAction::Async IndependentAction::spawn(Runtime& rt, std::function<void()> body,
                                                  Independence independence) {
  // Resolve the colour and parent on the invoking thread: the colour may
  // mint an ancestor's private colour, which must happen before the child's
  // colour set is fixed.
  const Colour colour = independence.resolve();
  AtomicAction* parent = ActionContext::current();

  auto state = std::make_shared<Async::State>();
  auto task = [&rt, parent, colour, body = std::move(body), state]() mutable {
    AtomicAction action(rt, parent, ColourSet{colour});
    action.begin();
    const Outcome outcome = run_body(action, body);
    {
      const std::scoped_lock lock(state->mutex);
      state->outcome = outcome;
      state->done = true;
    }
    state->done_cv.notify_all();
  };
  // try_submit_blocking refuses when every blocking worker is busy at the
  // cap — a queued task could then deadlock against an invoker join()ing
  // from one of those workers — and when shutting down. Run inline then:
  // same outcome, just no concurrency.
  if (!rt.executor().try_submit_blocking(task)) task();
  return Async(std::move(state));
}

Outcome IndependentAction::Async::join() {
  if (!joined_) {
    joined_ = true;
    if (state_) {
      std::unique_lock lock(state_->mutex);
      state_->done_cv.wait(lock, [&] { return state_->done; });
      result_ = state_->outcome;
    }
  }
  return result_;
}

}  // namespace mca
