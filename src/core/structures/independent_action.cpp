#include "core/structures/independent_action.h"

#include "common/logging.h"

namespace mca {
namespace {

Outcome run_body(AtomicAction& action, const std::function<void()>& body) {
  try {
    body();
  } catch (const std::exception& e) {
    MCA_LOG(Info, "independent") << "body threw (" << e.what() << "); aborting";
    action.abort();
    return Outcome::Aborted;
  }
  return action.commit();
}

}  // namespace

Outcome IndependentAction::run(Runtime& rt, const std::function<void()>& body,
                               Independence independence) {
  AtomicAction action(rt, ColourSet{independence.resolve()});
  action.begin();
  return run_body(action, body);
}

IndependentAction::Async IndependentAction::spawn(Runtime& rt, std::function<void()> body,
                                                  Independence independence) {
  // Resolve the colour and parent on the invoking thread: the colour may
  // mint an ancestor's private colour, which must happen before the child's
  // colour set is fixed.
  const Colour colour = independence.resolve();
  AtomicAction* parent = ActionContext::current();

  std::promise<Outcome> promise;
  std::future<Outcome> outcome = promise.get_future();
  std::thread thread([&rt, parent, colour, body = std::move(body),
                      promise = std::move(promise)]() mutable {
    AtomicAction action(rt, parent, ColourSet{colour});
    action.begin();
    promise.set_value(run_body(action, body));
  });
  return Async(std::move(outcome), std::move(thread));
}

Outcome IndependentAction::Async::join() {
  if (!joined_) {
    joined_ = true;
    if (outcome_.valid()) result_ = outcome_.get();
    if (thread_.joinable()) thread_.join();
  }
  return result_;
}

}  // namespace mca
