#include "core/structures/serializing_action.h"

namespace mca {
namespace {

LockPlan constituent_plan(Colour serial, Colour work) {
  LockPlan plan;
  plan.for_write = {{LockMode::Write, work}, {LockMode::ExclusiveRead, serial}};
  plan.for_read = {{LockMode::Read, serial}};
  plan.undo_colour = work;
  return plan;
}

}  // namespace

SerializingAction::SerializingAction(Runtime& rt)
    : SerializingAction(rt, ActionContext::current()) {}

SerializingAction::SerializingAction(Runtime& rt, AtomicAction* parent)
    : serial_(Colour::fresh("ser")),
      work_(Colour::fresh("work")),
      action_(rt, parent, ColourSet{serial_}) {}

void SerializingAction::begin() { action_.begin(); }

Outcome SerializingAction::run_constituent(const std::function<void()>& body) {
  AtomicAction c(action_.runtime(), &action_, ColourSet{serial_, work_});
  c.set_lock_plan(constituent_plan(serial_, work_));
  c.begin();
  try {
    body();
  } catch (...) {
    c.abort();
    throw;
  }
  return c.commit();
}

std::unique_ptr<AtomicAction> SerializingAction::constituent() {
  auto c = std::make_unique<AtomicAction>(action_.runtime(), &action_,
                                          ColourSet{serial_, work_});
  c->set_lock_plan(constituent_plan(serial_, work_));
  return c;
}

Outcome SerializingAction::end() { return action_.commit(); }

void SerializingAction::abort() { action_.abort(); }

}  // namespace mca
