// Glued actions (paper §3.2, implemented per §5.4 / fig. 12).
//
// Gluing lets a *selected subset* of an action's locks pass atomically to
// the next action while every other lock is released at commit time — more
// concurrency than a serializing action (which retains everything), with no
// cascade-abort risk (unlike naive early lock release).
//
// Colouring (automatic): the glue group G is coloured {g}; every constituent
// A_i is coloured {g, w} and works in w (plain single-colour plan). Inside a
// constituent, pass_on(obj) additionally takes an EXCLUSIVE-READ lock on obj
// in g; at the constituent's commit its w locks are released (and its
// updates made permanent — no w-coloured ancestor exists) while the g locks
// are inherited by G, carrying the object exclusively across the gap to the
// next constituent.
//
// Objects glued into a constituent but *not* passed on again are released
// when that constituent commits (fig. 9: rejected diary slots are freed),
// via an early release by G — safe because G is a pure transfer mechanism
// that never reads or writes the objects itself.
//
// Usage:
//   GlueGroup glue(rt);
//   glue.begin();
//   {
//     GlueGroup::Constituent a = glue.constituent();
//     a.begin();
//     ... modify objects ...
//     glue.pass_on(a, obj1);          // obj1 stays locked after a commits
//     a.commit();
//   }
//   {
//     GlueGroup::Constituent b = glue.constituent();
//     b.begin();
//     ... b can write obj1; everything else was released ...
//     b.commit();                      // obj1 released: b passed nothing on
//   }
//   glue.end();
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "core/atomic_action.h"

namespace mca {

class LockManaged;

class GlueGroup {
 public:
  class Constituent {
   public:
    void begin();
    Outcome commit();
    void abort();

    [[nodiscard]] AtomicAction& action() { return *action_; }

   private:
    friend class GlueGroup;
    Constituent(GlueGroup& group, std::unique_ptr<AtomicAction> action)
        : group_(&group), action_(std::move(action)) {}

    GlueGroup* group_;
    std::unique_ptr<AtomicAction> action_;
    std::unordered_set<Uid> passed_;
  };

  explicit GlueGroup(Runtime& rt);
  GlueGroup(Runtime& rt, AtomicAction* parent);

  void begin();

  // A fresh constituent ({g, w}-coloured child of the group). Constituents
  // may run sequentially (fig. 5/9) or concurrently (fig. 6).
  [[nodiscard]] Constituent constituent();

  // Marks `obj` to stay locked past `within`'s commit: takes an XR lock in
  // the glue colour charged to `within`. Throws LockFailure if it cannot be
  // granted.
  void pass_on(Constituent& within, LockManaged& obj);

  // Convenience: run a whole constituent on this thread; `body` receives the
  // constituent to pass_on through. Commits on normal return, aborts on
  // exception (which propagates).
  Outcome run_constituent(const std::function<void(Constituent&)>& body);

  // Ends the group, releasing every still-glued object. Like a serializing
  // action the group has no failure atomicity of its own: end() and abort()
  // differ only in reported status.
  Outcome end();
  void abort();

  // Objects currently carried by the group (test/bench introspection).
  [[nodiscard]] std::size_t glued_count() const;

  [[nodiscard]] AtomicAction& action() { return group_; }
  [[nodiscard]] Colour glue_colour() const { return glue_; }
  [[nodiscard]] Colour work_colour() const { return work_; }

 private:
  void constituent_committed(Constituent& c);

  Colour glue_;
  Colour work_;
  AtomicAction group_;
  mutable std::mutex mutex_;
  std::unordered_set<Uid> glued_;
};

}  // namespace mca
