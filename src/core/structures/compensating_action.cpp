#include "core/structures/compensating_action.h"

#include "common/logging.h"

namespace mca {

CompensationScope::~CompensationScope() {
  if (!settled_) {
    try {
      abandon();
    } catch (const std::exception& e) {
      MCA_LOG(Error, "compensation") << "abandon during destruction failed: " << e.what();
    }
  }
}

Outcome CompensationScope::step(const std::function<void()>& forward,
                                std::function<void()> compensator) {
  {
    const std::scoped_lock lock(mutex_);
    if (settled_) throw std::logic_error("CompensationScope: step after settle");
  }
  const Outcome outcome = IndependentAction::run(rt_, forward);
  if (outcome == Outcome::Committed) {
    const std::scoped_lock lock(mutex_);
    compensators_.push_back(std::move(compensator));
  }
  return outcome;
}

void CompensationScope::complete() {
  const std::scoped_lock lock(mutex_);
  settled_ = true;
  compensators_.clear();
}

std::size_t CompensationScope::abandon() {
  std::vector<std::function<void()>> to_run;
  {
    const std::scoped_lock lock(mutex_);
    if (settled_) return 0;
    settled_ = true;
    to_run = std::move(compensators_);
    compensators_.clear();
  }
  std::size_t committed = 0;
  for (auto it = to_run.rbegin(); it != to_run.rend(); ++it) {
    const Outcome outcome = IndependentAction::run(rt_, *it);
    if (outcome == Outcome::Committed) {
      ++committed;
    } else {
      MCA_LOG(Warn, "compensation") << "a compensator aborted; continuing with the rest";
    }
  }
  return committed;
}

std::size_t CompensationScope::pending_compensations() const {
  const std::scoped_lock lock(mutex_);
  return compensators_.size();
}

}  // namespace mca
