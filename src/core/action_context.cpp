#include "core/action_context.h"

#include <stdexcept>
#include <vector>

namespace mca {
namespace {

thread_local std::vector<AtomicAction*> t_stack;

}  // namespace

AtomicAction* ActionContext::current() { return t_stack.empty() ? nullptr : t_stack.back(); }

AtomicAction& ActionContext::require() {
  AtomicAction* a = current();
  if (a == nullptr) throw std::logic_error("no action is running on this thread");
  return *a;
}

void ActionContext::push(AtomicAction& action) { t_stack.push_back(&action); }

void ActionContext::pop(AtomicAction& action) {
  if (t_stack.empty() || t_stack.back() != &action) {
    throw std::logic_error("action context pop does not match innermost action");
  }
  t_stack.pop_back();
}

std::size_t ActionContext::depth() { return t_stack.size(); }

}  // namespace mca
