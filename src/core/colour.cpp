#include "core/colour.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace mca {
namespace {

// Interning table. Index 0 is reserved for the plain colour. `names` is a
// deque, not a vector, because Colour::name() returns a reference that
// outlives the lock: deque growth never invalidates references to existing
// elements, so a concurrent fresh()/named() cannot pull the string out from
// under a caller still reading it.
struct ColourTable {
  std::mutex mutex;
  std::deque<std::string> names{"plain"};
  std::unordered_map<std::string, std::uint32_t> by_name{{"plain", 0}};
};

ColourTable& table() {
  static ColourTable t;
  return t;
}

}  // namespace

Colour Colour::named(const std::string& name) {
  auto& t = table();
  const std::scoped_lock lock(t.mutex);
  auto [it, inserted] = t.by_name.try_emplace(name, static_cast<std::uint32_t>(t.names.size()));
  if (inserted) t.names.push_back(name);
  return Colour(it->second);
}

Colour Colour::fresh(const std::string& hint) {
  auto& t = table();
  const std::scoped_lock lock(t.mutex);
  const auto id = static_cast<std::uint32_t>(t.names.size());
  std::ostringstream name;
  name << hint << '#' << id;
  t.names.push_back(name.str());
  t.by_name.emplace(t.names.back(), id);
  return Colour(id);
}

const std::string& Colour::name() const {
  auto& t = table();
  const std::scoped_lock lock(t.mutex);
  return t.names.at(id_);
}

ColourSet::ColourSet(std::initializer_list<Colour> colours) : colours_(colours) { normalise(); }

ColourSet::ColourSet(std::vector<Colour> colours) : colours_(std::move(colours)) { normalise(); }

void ColourSet::normalise() {
  // Keep the first occurrence order-stable for primary(), but deduplicate.
  std::vector<Colour> unique;
  unique.reserve(colours_.size());
  for (Colour c : colours_) {
    if (std::find(unique.begin(), unique.end(), c) == unique.end()) unique.push_back(c);
  }
  colours_ = std::move(unique);
}

bool ColourSet::contains(Colour c) const {
  return std::find(colours_.begin(), colours_.end(), c) != colours_.end();
}

Colour ColourSet::primary() const {
  if (colours_.empty()) throw std::logic_error("ColourSet::primary on empty set");
  return colours_.front();
}

ColourSet ColourSet::with(Colour c) const {
  if (contains(c)) return *this;
  std::vector<Colour> out = colours_;
  out.push_back(c);
  return ColourSet(std::move(out));
}

std::string ColourSet::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < colours_.size(); ++i) {
    if (i > 0) os << ',';
    os << colours_[i].name();
  }
  os << '}';
  return os.str();
}

}  // namespace mca
