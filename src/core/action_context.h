// Thread-local action context.
//
// Each thread keeps a stack of the actions it has begun; the innermost one
// is the *current* action, which lock-managed objects charge their lock and
// undo traffic to. Children started on other threads name their parent
// explicitly and push onto their own thread's stack.
#pragma once

#include <cstddef>

namespace mca {

class AtomicAction;

class ActionContext {
 public:
  // The innermost running action on this thread, or nullptr.
  [[nodiscard]] static AtomicAction* current();

  // The current action, or a thrown std::logic_error if there is none —
  // for call sites that require an action (e.g. modifying a lock-managed
  // object).
  [[nodiscard]] static AtomicAction& require();

  static void push(AtomicAction& action);

  // Pops `action`, which must be the innermost entry of this thread's stack.
  static void pop(AtomicAction& action);

  [[nodiscard]] static std::size_t depth();
};

}  // namespace mca
