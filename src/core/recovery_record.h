// Recovery (undo) records.
//
// When an action first modifies an object it snapshots the object's prior
// in-memory state into an UndoRecord tagged with the colour of the write
// lock used. On abort the snapshots are re-applied in reverse order; on
// commit the records of each colour either pass to the closest ancestor of
// that colour (which can then undo past the child's changes if *it* aborts)
// or — for an outermost-in-colour commit — drive the write of the new state
// to the object's store (permanence of effect, §5.1 property 3).
#pragma once

#include "common/buffer.h"
#include "core/colour.h"

namespace mca {

class LockManaged;

struct UndoRecord {
  LockManaged* object = nullptr;
  Colour colour = Colour::plain();
  // Serialised state at the time of this action's first modification.
  ByteBuffer before;
};

}  // namespace mca
