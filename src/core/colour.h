// Colours and colour sets (paper §5).
//
// A colour is an attribute attached to actions and to the locks they
// acquire. Coloured actions of the same colour behave like conventional
// atomic actions towards each other; actions of different colours are
// decoupled for recovery and permanence. A Colour is an interned name —
// cheap to copy and compare — and a ColourSet is a small ordered set of
// them.
//
// The distinguished `Colour::plain()` is what single-coloured (conventional)
// actions use; a system in which every action is {plain} behaves exactly
// like a classical nested atomic action system (§5.1).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace mca {

class Colour {
 public:
  // Interns `name`, returning the same Colour for the same string.
  static Colour named(const std::string& name);

  // A fresh colour guaranteed distinct from every other colour in the
  // process; used by the structure builders (§5.3-5.5) to mint serializing /
  // glue / independence colours automatically.
  static Colour fresh(const std::string& hint = "c");

  // The default colour of conventional atomic actions.
  static Colour plain() { return Colour(0); }

  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] std::uint32_t id() const { return id_; }

  friend auto operator<=>(const Colour&, const Colour&) = default;

 private:
  explicit constexpr Colour(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

// An immutable small ordered set of colours. Actions are statically assigned
// their ColourSet when they begin (§5.1: "actions are statically assigned
// colours").
class ColourSet {
 public:
  ColourSet() = default;
  ColourSet(std::initializer_list<Colour> colours);
  explicit ColourSet(std::vector<Colour> colours);

  [[nodiscard]] bool contains(Colour c) const;
  [[nodiscard]] bool empty() const { return colours_.empty(); }
  [[nodiscard]] std::size_t size() const { return colours_.size(); }
  [[nodiscard]] const std::vector<Colour>& colours() const { return colours_; }

  // The colour used when an operation does not name one explicitly; defined
  // as the first colour of the set.
  [[nodiscard]] Colour primary() const;

  [[nodiscard]] ColourSet with(Colour c) const;

  [[nodiscard]] std::string to_string() const;

  auto begin() const { return colours_.begin(); }
  auto end() const { return colours_.end(); }

  friend bool operator==(const ColourSet&, const ColourSet&) = default;

 private:
  void normalise();
  std::vector<Colour> colours_;
};

}  // namespace mca

template <>
struct std::hash<mca::Colour> {
  std::size_t operator()(const mca::Colour& c) const noexcept { return c.id(); }
};
