// AtomicAction: the (multi-coloured) atomic action of the paper.
//
// Every action carries a ColourSet. A plain `AtomicAction(rt)` inherits its
// parent's colours (or {Colour::plain()} at top level), which makes the
// system behave exactly like a conventional nested atomic action system
// (§5.1). Structures built on colours — serializing, glued, independent
// actions — are in core/structures/.
//
// Lifecycle:
//   AtomicAction a(rt);        // parent = current action of this thread
//   a.begin();
//   ... operate on LockManaged objects ...
//   a.commit();                // or a.abort(); destructor aborts if running
//
// Commit processes each colour of the action independently (§5.2): locks and
// undo responsibility of colour c pass to the closest ancestor possessing c;
// if there is none the action is outermost-in-c and the c-coloured updates
// are made permanent — shadows are written to the objects' stores (prepare),
// then promoted (commit). Failure atomicity spans all of the action's
// colours: if any prepare fails the whole action aborts (§5.1 property 1).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/action_context.h"
#include "core/colour.h"
#include "core/recovery_record.h"
#include "core/runtime.h"

namespace mca {

class LockManaged;

enum class ActionStatus { Created, Running, Committed, Aborted };
enum class Outcome { Committed, Aborted };

[[nodiscard]] constexpr std::string_view to_string(ActionStatus s) {
  switch (s) {
    case ActionStatus::Created: return "created";
    case ActionStatus::Running: return "running";
    case ActionStatus::Committed: return "committed";
    case ActionStatus::Aborted: return "aborted";
  }
  return "?";
}

// What a colour of a committing action resolves to.
struct ColourDisposition {
  Colour colour;
  // Heir action for inheritance; nil for an outermost-in-colour commit
  // (the colour's effects become permanent).
  Uid heir = Uid::nil();
};

// Extension point used by the distributed layer: a participant mirrors the
// action's effects somewhere else (another node) and takes part in the
// termination protocol.
//
// Two surfaces: the blocking prepare/commit/abort virtuals, and the
// start_* variants the parallel termination path uses to overlap
// participants. start_* is called on the terminating thread in registration
// order and does any coordinator-local work inline (heir bookkeeping, log
// writes, crash points); the returned Pending represents whatever exchange
// is still in flight. The defaults run the blocking virtual inline and
// return an already-finished Pending, so a local participant (e.g. the
// coordinator log) keeps its exact position in the protocol order even
// when remote participants overlap around it.
class TerminationParticipant {
 public:
  // One started termination exchange.
  //   wait       blocks until the exchange finishes; returns the vote
  //              (prepare) or true (commit/abort). Must not throw.
  //   cancel     asks an in-flight exchange to finish early (vote gathering
  //              short-circuits to abort); null when there is nothing to
  //              cancel.
  //   subscribe  registers a completion callback receiving the vote; called
  //              immediately when already finished. The callback runs on
  //              whichever thread completes the exchange and must not
  //              block. Null only when wait is null (empty Pending).
  struct Pending {
    std::function<bool()> wait;
    std::function<void()> cancel;
    std::function<void(std::function<void(bool)>)> subscribe;
  };

  virtual ~TerminationParticipant() = default;
  // Phase one for the colours that become permanent; false vetoes the commit.
  virtual bool prepare(const Uid& action, const std::vector<Colour>& permanent_colours) = 0;
  // Decision point: called once on the terminating thread after every vote
  // is in and before anything — shadow promotion, lock release, phase two —
  // happens. This is where a participant makes the commit decision durable
  // (the coordinator log writes and mirrors its record here); returning
  // false turns the commit into an abort while that is still sound (no
  // record sealed, nothing promoted anywhere). `prepared_objects` are the
  // uids whose local shadows the kernel is about to promote, so the log can
  // record what a post-decision crash must redo.
  virtual bool decide_commit(const Uid& action, const std::vector<Uid>& prepared_objects) {
    (void)action;
    (void)prepared_objects;
    return true;
  }
  // Phase two: apply the per-colour dispositions.
  virtual void commit(const Uid& action, const std::vector<ColourDisposition>& dispositions) = 0;
  virtual void abort(const Uid& action) = 0;

  // Overlappable variants; defaults run the blocking virtual inline.
  virtual Pending start_prepare(const Uid& action,
                                const std::vector<Colour>& permanent_colours);
  virtual Pending start_commit(const Uid& action,
                               const std::vector<ColourDisposition>& dispositions);
  virtual Pending start_abort(const Uid& action);
};

// How logical read/write operations on objects map onto coloured lock
// acquisitions, and which colour undo records are filed under. The structure
// actions of §3 are implemented purely by installing non-default plans
// (figs. 11-13).
struct LockPlan {
  std::vector<std::pair<LockMode, Colour>> for_write;
  std::vector<std::pair<LockMode, Colour>> for_read;
  Colour undo_colour = Colour::plain();

  static LockPlan single(Colour c) {
    return LockPlan{{{LockMode::Write, c}}, {{LockMode::Read, c}}, c};
  }
};

class AtomicAction {
 public:
  // Nested (or top-level) action inheriting the parent's colours; parent is
  // the current action of the constructing thread.
  explicit AtomicAction(Runtime& rt);

  // Action with explicit colours; parent is the current action of the
  // constructing thread (colours need not be related to the parent's —
  // that is exactly how independent actions arise, fig. 13).
  AtomicAction(Runtime& rt, ColourSet colours);

  // Cross-thread child: explicit parent (may be nullptr for a root).
  AtomicAction(Runtime& rt, AtomicAction* parent, ColourSet colours);

  // -- mirror actions (distributed layer) -------------------------------------
  //
  // A *mirror* is the server-side image of a client action: it shares the
  // client action's Uid, holds the locks and undo records its operations
  // generate at this node, and is driven through the termination protocol by
  // the coordinator rather than by parent pointers (which live client-side).
  struct MirrorTag {};
  AtomicAction(Runtime& rt, MirrorTag, const Uid& uid, ColourSet colours);

  // Begins a mirror: registers the shipped ancestry path (root..self) so
  // this node's lock manager can answer ancestor queries about the caller.
  void begin_mirror(std::vector<Uid> path);

  // Marks a mirror committed after the coordinator-driven commit processing.
  void finish_mirror();

  // Removes and returns the undo records filed under `c` (commit
  // processing: they pass to the heir's mirror or drive permanence).
  [[nodiscard]] std::vector<UndoRecord> extract_records(Colour c);

  // Extends a mirror's colour set as later operations reveal more of the
  // client action's colours.
  void add_colours(const ColourSet& extra);

  // Aborts if still running. Never throws.
  ~AtomicAction();

  AtomicAction(const AtomicAction&) = delete;
  AtomicAction& operator=(const AtomicAction&) = delete;

  // Context participation: OnThread pushes the action onto the calling
  // thread's context stack (normal usage); Detached does not (used by the
  // RPC server for mirror actions driven by protocol messages).
  enum class ContextPolicy { OnThread, Detached };

  void begin(ContextPolicy policy = ContextPolicy::OnThread);

  // Terminates the action. Commit returns Aborted when the prepare phase
  // fails (a store fault or a participant veto). Throws std::logic_error if
  // the action is not running or still has running children.
  Outcome commit();
  void abort();

  // Disowns a running action whose coordinating node just simulated a crash
  // mid-termination: clears bookkeeping (context, ancestry, parent count,
  // participants) without undoing records or contacting anyone. The durable
  // coordinator log — present or absent — remains the truth of the outcome;
  // tx.status answers from it once the ancestry entry is gone. No-op unless
  // the action is running.
  void abandon();

  // -- identity & hierarchy --------------------------------------------------

  [[nodiscard]] const Uid& uid() const { return uid_; }
  [[nodiscard]] AtomicAction* parent() const { return parent_; }
  [[nodiscard]] Runtime& runtime() const { return rt_; }
  [[nodiscard]] ActionStatus status() const { return status_.load(); }
  [[nodiscard]] ColourSet colours() const;
  [[nodiscard]] bool has_colour(Colour c) const;

  // A colour unique to this action, minted on first use and added to the
  // action's colour set. A descendant that adopts exactly this colour is
  // "independent up to" this action: its effects survive the abort of every
  // action below this one but are undone if this one aborts (fig. 14/15
  // n-level independence).
  [[nodiscard]] Colour private_colour();

  // The closest ancestor (not including this action) possessing `c`, or
  // nullptr: determines inheritance targets at commit (§5.2).
  [[nodiscard]] AtomicAction* nearest_ancestor_with(Colour c) const;

  // -- lock plan & participants ----------------------------------------------

  [[nodiscard]] const LockPlan& lock_plan() const { return plan_; }
  void set_lock_plan(LockPlan plan) { plan_ = std::move(plan); }

  // Registers a termination participant. A non-empty `key` deduplicates:
  // re-registering the same key drops the newcomer and logs at Warn (used
  // for one-participant-per-remote-node bookkeeping).
  void add_participant(std::shared_ptr<TerminationParticipant> participant,
                       const std::string& key = "");
  [[nodiscard]] bool has_participant(const std::string& key) const;

  // The participant registered under `key`, or nullptr.
  [[nodiscard]] std::shared_ptr<TerminationParticipant> participant(
      const std::string& key) const;

  // -- services for LockManaged objects ---------------------------------------

  // Acquires the lock(s) the plan maps the logical mode to. `logical` must
  // be Read or Write; ExclusiveRead acquisitions use lock_explicit.
  [[nodiscard]] LockOutcome lock_for(LockManaged& object, LockMode logical);

  // Acquires exactly (mode, colour); colour must belong to this action.
  [[nodiscard]] LockOutcome lock_explicit(LockManaged& object, LockMode mode, Colour colour);

  // Files an undo record for `object` (first call per object wins) under
  // the colour of the write lock this action holds on it. Must follow a
  // granted write lock.
  void note_modified(LockManaged& object);

  // Adopts undo records inherited from a committing child (keeps the
  // earliest snapshot per object).
  void adopt_records(std::vector<UndoRecord> records);

  // The per-colour dispositions this action's commit would use now.
  [[nodiscard]] std::vector<ColourDisposition> dispositions() const;

  // Number of undo records currently filed (test/bench introspection).
  [[nodiscard]] std::size_t undo_record_count() const;

  // Lock acquisition timeout for this action (default LockManager's).
  void set_lock_timeout(std::chrono::milliseconds t) { lock_timeout_ = t; }

  // -- termination-path ablation ----------------------------------------------
  //
  // Process-global switch between the parallel termination path (default:
  // participant exchanges overlap via start_*, shadow writes are batched
  // per store) and the legacy serial path (blocking calls in registration
  // order, one shadow write at a time). Kept so both paths stay benchable;
  // the serial path is also the reference for differential testing.
  static void set_parallel_termination(bool on);
  [[nodiscard]] static bool parallel_termination();

 private:
  void end_bookkeeping();
  void restore_undo_records();
  [[nodiscard]] bool prepare_permanent(const std::vector<Colour>& permanent,
                                       std::vector<UndoRecord*>& prepared);

  Runtime& rt_;
  Uid uid_;
  AtomicAction* parent_;
  std::atomic<ActionStatus> status_{ActionStatus::Created};
  ContextPolicy context_policy_ = ContextPolicy::OnThread;

  struct RegisteredParticipant {
    std::string key;  // empty = unkeyed (never deduplicated)
    std::shared_ptr<TerminationParticipant> participant;
  };

  mutable std::mutex mutex_;  // guards colours_, undo_, participants_
  ColourSet colours_;
  std::optional<Colour> private_colour_;
  LockPlan plan_;
  std::vector<UndoRecord> undo_;
  // Registration order is protocol order (the coordinator log registers
  // first so its commit callback runs before any remote phase two); the
  // index gives O(1) keyed lookup instead of the old parallel-vector scan.
  std::vector<RegisteredParticipant> participants_;
  std::unordered_map<std::string, std::size_t> participant_index_;

  std::atomic<int> active_children_{0};
  std::chrono::milliseconds lock_timeout_ = LockManager::kDefaultTimeout;
};

}  // namespace mca
