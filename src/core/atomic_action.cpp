#include "core/atomic_action.h"

#include <algorithm>
#include <condition_variable>
#include <latch>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "objects/lock_managed.h"
#include "sim/crash_points.h"

namespace mca {
namespace {

ColourSet initial_colours(AtomicAction* parent, ColourSet explicit_colours) {
  if (!explicit_colours.empty()) return explicit_colours;
  if (parent != nullptr) return parent->colours();
  return ColourSet{Colour::plain()};
}

std::atomic<bool> g_parallel_termination{true};

// Gathers phase-one votes as they complete, whatever order the exchanges
// finish in. Heap-allocated and captured by shared_ptr in the completion
// callbacks so a straggler completing after the coordinator moved on (or
// unwound) writes into live memory.
struct VoteBoard {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
  bool veto = false;

  void note(bool vote) {
    const std::scoped_lock lock(mutex);
    ++done;
    if (!vote) veto = true;
    cv.notify_all();
  }

  // Blocks until every vote is in or any vote is a veto; returns veto.
  bool wait_all_or_veto(std::size_t expected) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return veto || done >= expected; });
    return veto;
  }
};

}  // namespace

void AtomicAction::set_parallel_termination(bool on) { g_parallel_termination.store(on); }

bool AtomicAction::parallel_termination() { return g_parallel_termination.load(); }

TerminationParticipant::Pending TerminationParticipant::start_prepare(
    const Uid& action, const std::vector<Colour>& permanent_colours) {
  const bool vote = prepare(action, permanent_colours);
  return Pending{[vote] { return vote; }, nullptr,
                 [vote](std::function<void(bool)> fn) { fn(vote); }};
}

TerminationParticipant::Pending TerminationParticipant::start_commit(
    const Uid& action, const std::vector<ColourDisposition>& dispositions) {
  commit(action, dispositions);
  return Pending{[] { return true; }, nullptr,
                 [](std::function<void(bool)> fn) { fn(true); }};
}

TerminationParticipant::Pending TerminationParticipant::start_abort(const Uid& action) {
  abort(action);
  return Pending{[] { return true; }, nullptr,
                 [](std::function<void(bool)> fn) { fn(true); }};
}

AtomicAction::AtomicAction(Runtime& rt) : AtomicAction(rt, ActionContext::current(), {}) {}

AtomicAction::AtomicAction(Runtime& rt, ColourSet colours)
    : AtomicAction(rt, ActionContext::current(), std::move(colours)) {}

AtomicAction::AtomicAction(Runtime& rt, AtomicAction* parent, ColourSet colours)
    : rt_(rt), parent_(parent), colours_(initial_colours(parent, std::move(colours))) {
  plan_ = LockPlan::single(colours_.primary());
}

AtomicAction::AtomicAction(Runtime& rt, MirrorTag, const Uid& uid, ColourSet colours)
    : rt_(rt), uid_(uid), parent_(nullptr), colours_(std::move(colours)) {
  if (colours_.empty()) colours_ = ColourSet{Colour::plain()};
  plan_ = LockPlan::single(colours_.primary());
}

void AtomicAction::begin_mirror(std::vector<Uid> path) {
  ActionStatus expected = ActionStatus::Created;
  if (!status_.compare_exchange_strong(expected, ActionStatus::Running)) {
    throw std::logic_error("AtomicAction::begin_mirror: action already begun");
  }
  context_policy_ = ContextPolicy::Detached;
  rt_.ancestry().register_action(uid_, std::move(path));
  rt_.note_begun();
}

void AtomicAction::finish_mirror() {
  ActionStatus expected = ActionStatus::Running;
  if (!status_.compare_exchange_strong(expected, ActionStatus::Committed)) {
    throw std::logic_error("AtomicAction::finish_mirror: mirror is not running");
  }
  rt_.ancestry().deregister_action(uid_);
  rt_.note_committed();
}

std::vector<UndoRecord> AtomicAction::extract_records(Colour c) {
  const std::scoped_lock lock(mutex_);
  std::vector<UndoRecord> out;
  std::erase_if(undo_, [&](UndoRecord& r) {
    if (r.colour != c) return false;
    out.push_back(std::move(r));
    return true;
  });
  return out;
}

void AtomicAction::add_colours(const ColourSet& extra) {
  const std::scoped_lock lock(mutex_);
  for (const Colour c : extra) colours_ = colours_.with(c);
}

AtomicAction::~AtomicAction() {
  if (status_.load() != ActionStatus::Running) return;
  try {
    abort();
  } catch (const std::exception& e) {
    MCA_LOG(Error, "action") << "abort during destruction of " << uid_ << " failed: " << e.what();
  }
}

void AtomicAction::begin(ContextPolicy policy) {
  ActionStatus expected = ActionStatus::Created;
  if (!status_.compare_exchange_strong(expected, ActionStatus::Running)) {
    throw std::logic_error("AtomicAction::begin: action already begun");
  }
  context_policy_ = policy;
  if (parent_ != nullptr) {
    if (parent_->status() != ActionStatus::Running) {
      status_.store(ActionStatus::Created);
      throw std::logic_error("AtomicAction::begin: parent is not running");
    }
    parent_->active_children_.fetch_add(1);
  }
  std::vector<Uid> path =
      parent_ != nullptr ? rt_.ancestry().path_of(parent_->uid()) : std::vector<Uid>{};
  path.push_back(uid_);
  rt_.ancestry().register_action(uid_, std::move(path));
  if (policy == ContextPolicy::OnThread) ActionContext::push(*this);
  rt_.note_begun();
  rt_.trace().record(TraceKind::ActionBegin, uid_, Uid::nil(), colours().to_string());
  MCA_LOG(Trace, "action") << "begin " << uid_ << " colours " << colours().to_string();
}

ColourSet AtomicAction::colours() const {
  const std::scoped_lock lock(mutex_);
  return colours_;
}

bool AtomicAction::has_colour(Colour c) const {
  const std::scoped_lock lock(mutex_);
  return colours_.contains(c);
}

Colour AtomicAction::private_colour() {
  const std::scoped_lock lock(mutex_);
  if (!private_colour_) {
    private_colour_ = Colour::fresh("priv");
    colours_ = colours_.with(*private_colour_);
  }
  return *private_colour_;
}

AtomicAction* AtomicAction::nearest_ancestor_with(Colour c) const {
  for (AtomicAction* a = parent_; a != nullptr; a = a->parent_) {
    if (a->has_colour(c)) return a;
  }
  return nullptr;
}

void AtomicAction::add_participant(std::shared_ptr<TerminationParticipant> participant,
                                   const std::string& key) {
  const std::scoped_lock lock(mutex_);
  if (!key.empty()) {
    const auto [it, inserted] = participant_index_.try_emplace(key, participants_.size());
    if (!inserted) {
      MCA_LOG(Warn, "action") << "participant key '" << key << "' already registered on "
                              << uid_ << "; dropping duplicate";
      return;
    }
  }
  participants_.push_back(RegisteredParticipant{key, std::move(participant)});
}

bool AtomicAction::has_participant(const std::string& key) const {
  const std::scoped_lock lock(mutex_);
  return participant_index_.contains(key);
}

std::shared_ptr<TerminationParticipant> AtomicAction::participant(const std::string& key) const {
  const std::scoped_lock lock(mutex_);
  auto it = participant_index_.find(key);
  if (it == participant_index_.end()) return nullptr;
  return participants_[it->second].participant;
}

LockOutcome AtomicAction::lock_for(LockManaged& object, LockMode logical) {
  if (status() != ActionStatus::Running) {
    throw std::logic_error("lock_for: action is not running");
  }
  const LockPlan plan = [&] {
    const std::scoped_lock lock(mutex_);
    return plan_;
  }();
  const auto& acquisitions =
      logical == LockMode::Write ? plan.for_write : plan.for_read;
  if (logical == LockMode::ExclusiveRead) {
    throw std::logic_error("lock_for: use lock_explicit for exclusive-read");
  }
  for (const auto& [mode, colour] : acquisitions) {
    if (!has_colour(colour)) {
      throw std::logic_error("lock plan names colour " + colour.name() +
                             " the action does not possess");
    }
    const LockOutcome o =
        rt_.lock_manager().acquire(uid_, object.uid(), mode, colour, lock_timeout_);
    if (o != LockOutcome::Granted) return o;
    if (status() != ActionStatus::Running) {
      // The action was terminated (e.g. a mirror aborted by its
      // coordinator) while this request waited: the grant must not stick.
      rt_.lock_manager().release_early(uid_, object.uid(), colour, mode);
      throw std::logic_error("lock_for: action terminated while waiting for a lock");
    }
  }
  object.ensure_activated();
  return LockOutcome::Granted;
}

LockOutcome AtomicAction::lock_explicit(LockManaged& object, LockMode mode, Colour colour) {
  if (status() != ActionStatus::Running) {
    throw std::logic_error("lock_explicit: action is not running");
  }
  if (!has_colour(colour)) {
    throw std::logic_error("lock_explicit: action does not possess colour " + colour.name());
  }
  const LockOutcome o =
      rt_.lock_manager().acquire(uid_, object.uid(), mode, colour, lock_timeout_);
  if (o == LockOutcome::Granted) {
    if (status() != ActionStatus::Running) {
      rt_.lock_manager().release_early(uid_, object.uid(), colour, mode);
      throw std::logic_error("lock_explicit: action terminated while waiting for a lock");
    }
    object.ensure_activated();
  }
  return o;
}

void AtomicAction::note_modified(LockManaged& object) {
  // The undo record carries the colour of the write lock this action holds;
  // the grant rules guarantee an object carries write locks of one colour
  // only, so the lookup is unambiguous.
  const std::optional<Colour> write_colour = rt_.lock_manager().write_colour(uid_, object.uid());
  if (!write_colour) {
    throw std::logic_error("modified() called without a write lock on object " +
                           object.uid().to_string());
  }
  const std::scoped_lock lock(mutex_);
  const bool already_recorded =
      std::any_of(undo_.begin(), undo_.end(),
                  [&](const UndoRecord& r) { return r.object == &object; });
  if (already_recorded) return;
  undo_.push_back(UndoRecord{&object, *write_colour, object.snapshot_state()});
}

void AtomicAction::adopt_records(std::vector<UndoRecord> records) {
  const std::scoped_lock lock(mutex_);
  for (UndoRecord& incoming : records) {
    const bool have = std::any_of(undo_.begin(), undo_.end(), [&](const UndoRecord& r) {
      return r.object == incoming.object;
    });
    // Keep the earliest snapshot: if this action already filed (or adopted)
    // a record for the object, its snapshot predates the child's.
    if (!have) undo_.push_back(std::move(incoming));
  }
}

std::vector<ColourDisposition> AtomicAction::dispositions() const {
  std::vector<ColourDisposition> out;
  for (const Colour c : colours()) {
    AtomicAction* heir = nearest_ancestor_with(c);
    out.push_back(ColourDisposition{c, heir != nullptr ? heir->uid() : Uid::nil()});
  }
  return out;
}

std::size_t AtomicAction::undo_record_count() const {
  const std::scoped_lock lock(mutex_);
  return undo_.size();
}

bool AtomicAction::prepare_permanent(const std::vector<Colour>& permanent,
                                     std::vector<UndoRecord*>& prepared) {
  const std::scoped_lock lock(mutex_);
  if (!parallel_termination()) {
    // Legacy path: one shadow write (and one durability barrier) at a time.
    for (UndoRecord& r : undo_) {
      if (std::find(permanent.begin(), permanent.end(), r.colour) == permanent.end()) continue;
      try {
        r.object->store().write_shadow(r.object->make_object_state());
        prepared.push_back(&r);
      } catch (const std::exception& e) {
        MCA_LOG(Warn, "action") << "prepare failed for object " << r.object->uid() << ": "
                                << e.what();
        for (UndoRecord* p : prepared) p->object->store().discard_shadow(p->object->uid());
        prepared.clear();
        return false;
      }
    }
    return true;
  }

  // Group the permanent-colour records per store: each store lands its whole
  // batch behind one durability barrier (FileStore group commit), and
  // independent stores write concurrently.
  std::vector<std::pair<ObjectStore*, std::vector<UndoRecord*>>> batches;
  for (UndoRecord& r : undo_) {
    if (std::find(permanent.begin(), permanent.end(), r.colour) == permanent.end()) continue;
    ObjectStore* store = &r.object->store();
    auto it = std::find_if(batches.begin(), batches.end(),
                           [&](const auto& b) { return b.first == store; });
    if (it == batches.end()) {
      batches.emplace_back(store, std::vector<UndoRecord*>{});
      it = std::prev(batches.end());
    }
    it->second.push_back(&r);
  }
  if (batches.empty()) return true;

  const auto run_batch = [&](std::size_t i) {
    std::vector<ObjectState> states;
    states.reserve(batches[i].second.size());
    for (UndoRecord* r : batches[i].second) states.push_back(r->object->make_object_state());
    batches[i].first->write_batch(states, WriteKind::Shadow);
  };

  std::vector<std::exception_ptr> errors(batches.size());
  if (batches.size() == 1) {
    try {
      run_batch(0);
    } catch (const std::exception&) {
      errors[0] = std::current_exception();
    }
    // Anything else (a simulated kill) tunnels out, as it always has.
  } else {
    // Fan the extra batches out on the runtime executor; batch 0 runs here.
    // A refused submission (queue full, shutdown) runs inline on this
    // thread — the serial fallback, not a failure.
    std::latch done(static_cast<std::ptrdiff_t>(batches.size() - 1));
    for (std::size_t i = 1; i < batches.size(); ++i) {
      auto work = [&, i] {
        try {
          run_batch(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
        done.count_down();
      };
      if (!rt_.executor().try_submit(work)) work();
    }
    try {
      run_batch(0);
    } catch (...) {
      errors[0] = std::current_exception();
    }
    done.wait();
  }

  bool veto = false;
  std::exception_ptr kill;
  for (const std::exception_ptr& error : errors) {
    if (!error) continue;
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      MCA_LOG(Warn, "action") << "prepare batch failed: " << e.what();
      veto = true;
    } catch (...) {
      kill = error;  // CrashPointHit: re-raise on this thread so it tunnels
    }
  }
  if (kill) std::rethrow_exception(kill);
  if (veto) {
    // A failed batch may be partially written; discard every uid we touched
    // (discarding a shadow that never landed is a harmless no-op).
    for (const auto& [store, records] : batches) {
      for (UndoRecord* r : records) store->discard_shadow(r->object->uid());
    }
    return false;
  }
  for (const auto& [store, records] : batches) {
    for (UndoRecord* r : records) prepared.push_back(r);
  }
  return true;
}

Outcome AtomicAction::commit() {
  if (status() != ActionStatus::Running) {
    throw std::logic_error("AtomicAction::commit: action is not running");
  }
  if (active_children_.load() != 0) {
    throw std::logic_error("AtomicAction::commit: children still running");
  }

  // Resolve each colour to its heir (or to permanence).
  struct Resolution {
    Colour colour;
    AtomicAction* heir;
  };
  std::vector<Resolution> resolutions;
  std::vector<Colour> permanent;
  for (const Colour c : colours()) {
    AtomicAction* heir = nearest_ancestor_with(c);
    resolutions.push_back({c, heir});
    if (heir == nullptr) permanent.push_back(c);
  }

  // Phase one: shadows for every permanent-colour update, then participants.
  // Any failure aborts the whole action — failure atomicity spans all the
  // action's colours (§5.1 property 1).
  std::vector<UndoRecord*> prepared;
  if (!prepare_permanent(permanent, prepared)) {
    rt_.note_prepare_failure();
    abort();
    return Outcome::Aborted;
  }
  const auto dispos = dispositions();
  const auto participants = [&] {
    const std::scoped_lock lock(mutex_);
    std::vector<std::shared_ptr<TerminationParticipant>> out;
    out.reserve(participants_.size());
    for (const RegisteredParticipant& rp : participants_) out.push_back(rp.participant);
    return out;
  }();
  MCA_CRASHPOINT("tpc.coord.phase1.pre_send");
  bool veto = false;
  if (parallel_termination()) {
    // Fan phase one out: start every exchange, then gather votes in
    // completion order. The first no/timeout vote short-circuits — the
    // stragglers are cancelled and drained before the abort goes out, so a
    // late tx.prepare retransmit can never land after its tx.abort was
    // processed with protocol state still live (a mirror-less participant
    // votes no and writes nothing).
    auto board = std::make_shared<VoteBoard>();
    std::vector<TerminationParticipant::Pending> pendings;
    pendings.reserve(participants.size());
    for (auto& p : participants) {
      TerminationParticipant::Pending pend;
      try {
        pend = p->start_prepare(uid_, permanent);
      } catch (const std::exception& e) {
        MCA_LOG(Warn, "action") << "participant prepare threw: " << e.what();
        board->note(false);
        continue;
      }
      if (pend.subscribe) {
        pend.subscribe([board](bool vote) { board->note(vote); });
      } else if (pend.wait) {
        board->note(pend.wait());
      } else {
        board->note(true);
      }
      pendings.push_back(std::move(pend));
    }
    veto = board->wait_all_or_veto(participants.size());
    if (veto) {
      for (auto& pend : pendings) {
        if (pend.cancel) pend.cancel();
      }
    }
    for (auto& pend : pendings) {
      if (pend.wait) (void)pend.wait();
    }
  } else {
    for (auto& p : participants) {
      bool ok = false;
      try {
        ok = p->prepare(uid_, permanent);
      } catch (const std::exception& e) {
        MCA_LOG(Warn, "action") << "participant prepare threw: " << e.what();
      }
      if (!ok) {
        veto = true;
        break;
      }
    }
  }
  if (veto) {
    for (UndoRecord* r : prepared) r->object->store().discard_shadow(r->object->uid());
    rt_.note_prepare_failure();
    abort();
    return Outcome::Aborted;
  }

  // Every vote is in but the decision is not durable anywhere: a kill here
  // must resolve as abort (presumed abort — the log record is the commit).
  MCA_CRASHPOINT("tpc.coord.post_prepare_pre_log");
  // Decision point: participants make the decision durable (the coordinator
  // log writes — and mirrors — its record here, before any promotion). A
  // participant that cannot do so turns the commit into an abort while that
  // is still sound. CrashPointHit is not a std::exception, so a simulated
  // kill inside the window tunnels out instead of being read as a refusal.
  {
    std::vector<Uid> prepared_uids;
    prepared_uids.reserve(prepared.size());
    for (UndoRecord* r : prepared) prepared_uids.push_back(r->object->uid());
    bool decided = true;
    for (auto& p : participants) {
      try {
        if (!p->decide_commit(uid_, prepared_uids)) {
          decided = false;
          break;
        }
      } catch (const std::exception& e) {
        MCA_LOG(Warn, "action") << "participant decide threw: " << e.what();
        decided = false;
        break;
      }
    }
    if (!decided) {
      for (UndoRecord* r : prepared) r->object->store().discard_shadow(r->object->uid());
      rt_.note_prepare_failure();
      abort();
      return Outcome::Aborted;
    }
  }
  // Phase two: promote shadows, then process locks and records per colour.
  for (UndoRecord* r : prepared) r->object->store().commit_shadow(r->object->uid());

  for (const Resolution& res : resolutions) {
    if (res.heir == nullptr) {
      rt_.trace().record(TraceKind::ColourReleased, uid_, Uid::nil(), res.colour.name());
      rt_.lock_manager().on_commit_release(uid_, res.colour);
    } else {
      rt_.trace().record(TraceKind::ColourInherited, uid_, res.heir->uid(), res.colour.name());
      std::vector<UndoRecord> passing;
      {
        const std::scoped_lock lock(mutex_);
        std::erase_if(undo_, [&](UndoRecord& r) {
          if (r.colour != res.colour) return false;
          passing.push_back(std::move(r));
          return true;
        });
      }
      res.heir->adopt_records(std::move(passing));
      rt_.lock_manager().on_commit_inherit(uid_, res.colour, res.heir->uid());
    }
  }

  // Phase two to the participants. The start loop runs in registration
  // order, so the coordinator log's (inline) commit is durable before the
  // first remote delivery is even issued; the remote deliveries themselves
  // overlap and are drained afterwards.
  if (parallel_termination()) {
    std::vector<TerminationParticipant::Pending> pendings;
    pendings.reserve(participants.size());
    for (auto& p : participants) {
      try {
        pendings.push_back(p->start_commit(uid_, dispos));
      } catch (const std::exception& e) {
        MCA_LOG(Error, "action") << "participant commit threw: " << e.what();
      }
    }
    for (auto& pend : pendings) {
      if (pend.wait) (void)pend.wait();
    }
  } else {
    for (auto& p : participants) {
      try {
        p->commit(uid_, dispos);
      } catch (const std::exception& e) {
        MCA_LOG(Error, "action") << "participant commit threw: " << e.what();
      }
    }
  }
  {
    const std::scoped_lock lock(mutex_);
    undo_.clear();
  }

  status_.store(ActionStatus::Committed);
  end_bookkeeping();
  rt_.note_committed();
  rt_.trace().record(TraceKind::ActionCommit, uid_);
  MCA_LOG(Trace, "action") << "committed " << uid_;
  return Outcome::Committed;
}

void AtomicAction::abort() {
  if (status() != ActionStatus::Running) {
    throw std::logic_error("AtomicAction::abort: action is not running");
  }
  if (active_children_.load() != 0) {
    throw std::logic_error("AtomicAction::abort: children still running");
  }
  const auto participants = [&] {
    const std::scoped_lock lock(mutex_);
    std::vector<std::shared_ptr<TerminationParticipant>> out;
    out.reserve(participants_.size());
    for (const RegisteredParticipant& rp : participants_) out.push_back(rp.participant);
    return out;
  }();
  if (parallel_termination()) {
    std::vector<TerminationParticipant::Pending> pendings;
    pendings.reserve(participants.size());
    for (auto& p : participants) {
      try {
        pendings.push_back(p->start_abort(uid_));
      } catch (const std::exception& e) {
        MCA_LOG(Error, "action") << "participant abort threw: " << e.what();
      }
    }
    for (auto& pend : pendings) {
      if (pend.wait) (void)pend.wait();
    }
  } else {
    for (auto& p : participants) {
      try {
        p->abort(uid_);
      } catch (const std::exception& e) {
        MCA_LOG(Error, "action") << "participant abort threw: " << e.what();
      }
    }
  }
  restore_undo_records();
  rt_.lock_manager().on_abort(uid_);
  status_.store(ActionStatus::Aborted);
  end_bookkeeping();
  rt_.note_aborted();
  rt_.trace().record(TraceKind::ActionAbort, uid_);
  MCA_LOG(Trace, "action") << "aborted " << uid_;
}

void AtomicAction::abandon() {
  if (status() != ActionStatus::Running) return;
  {
    const std::scoped_lock lock(mutex_);
    undo_.clear();  // the objects' memory was reset by the crash; nothing to undo
    participants_.clear();
    participant_index_.clear();
  }
  status_.store(ActionStatus::Aborted);
  end_bookkeeping();
  rt_.note_aborted();
  rt_.trace().record(TraceKind::ActionAbort, uid_);
  MCA_LOG(Trace, "action") << "abandoned " << uid_ << " (coordinator crash)";
}

void AtomicAction::restore_undo_records() {
  const std::scoped_lock lock(mutex_);
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    it->object->apply_state(it->before);
  }
  undo_.clear();
}

void AtomicAction::end_bookkeeping() {
  if (context_policy_ == ContextPolicy::OnThread) ActionContext::pop(*this);
  rt_.ancestry().deregister_action(uid_);
  if (parent_ != nullptr) parent_->active_children_.fetch_sub(1);
}

}  // namespace mca
