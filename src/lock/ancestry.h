// Action-ancestry lookup used by the lock grant rules.
//
// Both the classical (Moss) and the coloured grant rules are phrased in
// terms of "all holders are ancestors of the requesting action". The lock
// manager is decoupled from the action kernel through this interface; the
// kernel registers each action's path (root..self) when it begins, and the
// RPC layer registers the shipped path of remote callers, so a server-side
// lock manager can answer ancestry questions about client actions it has
// never run locally.
#pragma once

#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/uid.h"

namespace mca {

using ActionUid = Uid;

class Ancestry {
 public:
  virtual ~Ancestry() = default;

  // True when `ancestor` is `action` itself or a (transitive) parent of it.
  [[nodiscard]] virtual bool is_ancestor_or_same(const ActionUid& ancestor,
                                                 const ActionUid& action) const = 0;
};

// Path-table implementation: each registered action maps to its ancestor
// path [root, ..., self]. Thread safe.
class PathAncestry final : public Ancestry {
 public:
  // Registers `action` with the given path, which must end with `action`.
  void register_action(const ActionUid& action, std::vector<ActionUid> path);
  void deregister_action(const ActionUid& action);

  [[nodiscard]] bool is_ancestor_or_same(const ActionUid& ancestor,
                                         const ActionUid& action) const override;

  // The registered path of `action` (empty if unknown); used when shipping
  // call contexts to remote nodes.
  [[nodiscard]] std::vector<ActionUid> path_of(const ActionUid& action) const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<ActionUid, std::vector<ActionUid>> paths_;
};

}  // namespace mca
