// Wait-for-graph deadlock detection.
//
// Each blocked lock request registers edges (waiter -> every blocking
// holder). Before a requester sleeps, the detector checks whether its new
// edges close a cycle; if so the request is refused with Deadlock and the
// application aborts the action (the paper's model resolves deadlocks by
// aborting, §2).
#pragma once

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/uid.h"

namespace mca {

class DeadlockDetector {
 public:
  // Replaces the out-edges of `waiter` with edges to `holders`.
  void set_waits_for(const Uid& waiter, const std::vector<Uid>& holders);

  // Removes `waiter`'s out-edges (granted, refused, or timed out).
  void clear_waits_for(const Uid& waiter);

  // Drops the whole graph (crash simulation alongside LockManager::clear).
  void clear();

  // True when `waiter` can reach itself through the wait-for graph.
  [[nodiscard]] bool on_cycle(const Uid& waiter) const;

  [[nodiscard]] std::size_t edge_count() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<Uid, std::unordered_set<Uid>> edges_;
};

}  // namespace mca
