#include "lock/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace mca {

void PathAncestry::register_action(const ActionUid& action, std::vector<ActionUid> path) {
  const std::scoped_lock lock(mutex_);
  paths_[action] = std::move(path);
}

void PathAncestry::deregister_action(const ActionUid& action) {
  const std::scoped_lock lock(mutex_);
  paths_.erase(action);
}

bool PathAncestry::is_ancestor_or_same(const ActionUid& ancestor, const ActionUid& action) const {
  if (ancestor == action) return true;
  const std::scoped_lock lock(mutex_);
  auto it = paths_.find(action);
  if (it == paths_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), ancestor) != it->second.end();
}

std::vector<ActionUid> PathAncestry::path_of(const ActionUid& action) const {
  const std::scoped_lock lock(mutex_);
  auto it = paths_.find(action);
  return it == paths_.end() ? std::vector<ActionUid>{} : it->second;
}

LockOutcome LockManager::acquire(const ActionUid& requester, const Uid& object, LockMode mode,
                                 Colour colour, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lock(mutex_);
  bool waited = false;
  const auto wait_started = std::chrono::steady_clock::now();

  for (;;) {
    LockRecord& record = records_[object];
    switch (record.evaluate(requester, mode, colour, ancestry_)) {
      case GrantVerdict::Granted: {
        record.add(requester, mode, colour);
        ++stats_.grants;
        if (!waited) {
          ++stats_.immediate_grants;
        } else {
          detector_.clear_waits_for(requester);
          stats_.total_wait_micros += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - wait_started)
                  .count());
        }
        MCA_LOG(Trace, "lock") << "granted " << to_string(mode) << '/' << colour.name() << " on "
                               << object << " to " << requester;
        trace_event(TraceKind::LockGranted, requester, object,
                    std::string(to_string(mode)) + "/" + colour.name());
        return LockOutcome::Granted;
      }
      case GrantVerdict::Unresolvable: {
        if (waited) detector_.clear_waits_for(requester);
        ++stats_.refusals;
        MCA_LOG(Debug, "lock") << "refused " << to_string(mode) << '/' << colour.name() << " on "
                               << object << " to " << requester
                               << " (ancestor holds differently-coloured write)";
        trace_event(TraceKind::LockRefused, requester, object,
                    std::string(to_string(mode)) + "/" + colour.name());
        return LockOutcome::Refused;
      }
      case GrantVerdict::MustWait:
        break;
    }

    detector_.set_waits_for(requester, record.blockers(requester, mode, colour, ancestry_));
    if (detector_.on_cycle(requester)) {
      detector_.clear_waits_for(requester);
      ++stats_.deadlocks;
      MCA_LOG(Debug, "lock") << "deadlock: " << requester << " requesting " << to_string(mode)
                             << " on " << object;
      trace_event(TraceKind::LockDeadlock, requester, object, std::string(to_string(mode)));
      return LockOutcome::Deadlock;
    }
    if (!waited) {
      waited = true;
      ++stats_.waits;
      trace_event(TraceKind::LockWait, requester, object,
                  std::string(to_string(mode)) + "/" + colour.name());
    }
    if (changed_.wait_until(lock, deadline) == std::cv_status::timeout) {
      detector_.clear_waits_for(requester);
      ++stats_.timeouts;
      return LockOutcome::Timeout;
    }
  }
}

void LockManager::on_commit_inherit(const ActionUid& owner, Colour colour, const ActionUid& heir) {
  {
    const std::scoped_lock lock(mutex_);
    for (auto it = records_.begin(); it != records_.end();) {
      it->second.inherit(owner, colour, heir);
      it = it->second.empty() ? records_.erase(it) : std::next(it);
    }
  }
  changed_.notify_all();
}

void LockManager::on_commit_release(const ActionUid& owner, Colour colour) {
  {
    const std::scoped_lock lock(mutex_);
    for (auto it = records_.begin(); it != records_.end();) {
      it->second.release_colour(owner, colour);
      it = it->second.empty() ? records_.erase(it) : std::next(it);
    }
  }
  changed_.notify_all();
}

void LockManager::on_abort(const ActionUid& owner) {
  {
    const std::scoped_lock lock(mutex_);
    for (auto it = records_.begin(); it != records_.end();) {
      it->second.drop_owner(owner);
      it = it->second.empty() ? records_.erase(it) : std::next(it);
    }
    detector_.clear_waits_for(owner);
  }
  changed_.notify_all();
}

void LockManager::release_early(const ActionUid& owner, const Uid& object, Colour colour,
                                LockMode mode) {
  {
    const std::scoped_lock lock(mutex_);
    auto it = records_.find(object);
    if (it == records_.end()) return;
    it->second.release_entries(owner, colour, mode);
    if (it->second.empty()) records_.erase(it);
  }
  changed_.notify_all();
}

void LockManager::clear() {
  {
    const std::scoped_lock lock(mutex_);
    records_.clear();
  }
  changed_.notify_all();
}

std::vector<LockEntry> LockManager::entries(const Uid& object) const {
  const std::scoped_lock lock(mutex_);
  auto it = records_.find(object);
  return it == records_.end() ? std::vector<LockEntry>{} : it->second.entries();
}

bool LockManager::holds(const ActionUid& owner, const Uid& object, LockMode mode,
                        Colour colour) const {
  const std::scoped_lock lock(mutex_);
  auto it = records_.find(object);
  return it != records_.end() && it->second.holds(owner, mode, colour);
}

std::size_t LockManager::locked_object_count() const {
  const std::scoped_lock lock(mutex_);
  return records_.size();
}

LockManager::Stats LockManager::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

void LockManager::reset_stats() {
  const std::scoped_lock lock(mutex_);
  stats_ = Stats{};
}

}  // namespace mca
