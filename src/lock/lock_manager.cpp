#include "lock/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace mca {

void PathAncestry::register_action(const ActionUid& action, std::vector<ActionUid> path) {
  const std::scoped_lock lock(mutex_);
  paths_[action] = std::move(path);
}

void PathAncestry::deregister_action(const ActionUid& action) {
  const std::scoped_lock lock(mutex_);
  paths_.erase(action);
}

bool PathAncestry::is_ancestor_or_same(const ActionUid& ancestor, const ActionUid& action) const {
  if (ancestor == action) return true;
  const std::scoped_lock lock(mutex_);
  auto it = paths_.find(action);
  if (it == paths_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), ancestor) != it->second.end();
}

std::vector<ActionUid> PathAncestry::path_of(const ActionUid& action) const {
  const std::scoped_lock lock(mutex_);
  auto it = paths_.find(action);
  return it == paths_.end() ? std::vector<ActionUid>{} : it->second;
}

LockManager::LockManager(const Ancestry& ancestry, std::size_t stripes) : ancestry_(ancestry) {
  const std::size_t n = std::max<std::size_t>(1, stripes);
  stripes_.reserve(n);
  owner_shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    owner_shards_.push_back(std::make_unique<OwnerShard>());
  }
}

void LockManager::reap_slot(Stripe& stripe, const Uid& object) {
  auto it = stripe.slots.find(object);
  if (it != stripe.slots.end() && it->second.record.empty() && it->second.waiters == 0) {
    stripe.slots.erase(it);
  }
}

std::vector<Uid> LockManager::held_objects(const ActionUid& owner) {
  OwnerShard& shard = owner_shard_for(owner);
  const std::scoped_lock lock(shard.mutex);
  auto it = shard.held.find(owner);
  if (it == shard.held.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void LockManager::unindex(const ActionUid& owner, const std::vector<Uid>& objects) {
  if (objects.empty()) return;
  OwnerShard& shard = owner_shard_for(owner);
  const std::scoped_lock lock(shard.mutex);
  auto it = shard.held.find(owner);
  if (it == shard.held.end()) return;
  for (const Uid& object : objects) it->second.erase(object);
  if (it->second.empty()) shard.held.erase(it);
}

LockOutcome LockManager::acquire(const ActionUid& requester, const Uid& object, LockMode mode,
                                 Colour colour, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Stripe& stripe = stripe_for(object);
  std::unique_lock lock(stripe.mutex);
  // The slot reference stays valid for the whole call: erasure requires the
  // stripe mutex (held except inside waits) and `waiters == 0` (we pin the
  // slot around every wait).
  Slot& slot = stripe.slots[object];
  bool waited = false;
  const auto wait_started = std::chrono::steady_clock::now();

  // Wait time is charged on *every* exit path, not just grants: a timed-out
  // or deadlocked request spent real time blocked and the stats must say so.
  const auto charge_wait = [&] {
    if (!waited) return;
    stripe.stats.total_wait_micros += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              wait_started)
            .count());
  };

  for (;;) {
    switch (slot.record.evaluate(requester, mode, colour, ancestry_)) {
      case GrantVerdict::Granted: {
        slot.record.add(requester, mode, colour);
        ++stripe.stats.grants;
        if (!waited) {
          ++stripe.stats.immediate_grants;
        } else {
          detector_.clear_waits_for(requester);
        }
        charge_wait();
        lock.unlock();
        {
          OwnerShard& shard = owner_shard_for(requester);
          const std::scoped_lock shard_lock(shard.mutex);
          shard.held[requester].insert(object);
        }
        MCA_LOG(Trace, "lock") << "granted " << to_string(mode) << '/' << colour.name() << " on "
                               << object << " to " << requester;
        trace_event(TraceKind::LockGranted, requester, object,
                    std::string(to_string(mode)) + "/" + colour.name());
        return LockOutcome::Granted;
      }
      case GrantVerdict::Unresolvable: {
        if (waited) detector_.clear_waits_for(requester);
        charge_wait();
        ++stripe.stats.refusals;
        reap_slot(stripe, object);
        MCA_LOG(Debug, "lock") << "refused " << to_string(mode) << '/' << colour.name() << " on "
                               << object << " to " << requester
                               << " (ancestor holds differently-coloured write)";
        trace_event(TraceKind::LockRefused, requester, object,
                    std::string(to_string(mode)) + "/" + colour.name());
        return LockOutcome::Refused;
      }
      case GrantVerdict::MustWait:
        break;
    }

    detector_.set_waits_for(requester, slot.record.blockers(requester, mode, colour, ancestry_));
    if (detector_.on_cycle(requester)) {
      detector_.clear_waits_for(requester);
      charge_wait();
      ++stripe.stats.deadlocks;
      reap_slot(stripe, object);
      MCA_LOG(Debug, "lock") << "deadlock: " << requester << " requesting " << to_string(mode)
                             << " on " << object;
      trace_event(TraceKind::LockDeadlock, requester, object, std::string(to_string(mode)));
      return LockOutcome::Deadlock;
    }
    if (!waited) {
      waited = true;
      ++stripe.stats.waits;
      trace_event(TraceKind::LockWait, requester, object,
                  std::string(to_string(mode)) + "/" + colour.name());
    }
    ++slot.waiters;
    const bool timed_out = slot.waiter_cv.wait_until(lock, deadline) == std::cv_status::timeout;
    --slot.waiters;
    if (timed_out) {
      detector_.clear_waits_for(requester);
      charge_wait();
      ++stripe.stats.timeouts;
      reap_slot(stripe, object);
      return LockOutcome::Timeout;
    }
  }
}

void LockManager::on_commit_inherit(const ActionUid& owner, Colour colour, const ActionUid& heir) {
  if (heir == owner) return;  // moving locks to oneself is a no-op
  std::vector<Uid> gained;    // objects the heir now holds entries on
  std::vector<Uid> lost;      // objects the owner no longer holds entries on
  for (const Uid& object : held_objects(owner)) {
    Stripe& stripe = stripe_for(object);
    const std::scoped_lock lock(stripe.mutex);
    auto it = stripe.slots.find(object);
    if (it == stripe.slots.end()) {  // e.g. a crash clear()ed the records
      lost.push_back(object);
      continue;
    }
    Slot& slot = it->second;
    if (slot.record.inherit(owner, colour, heir) > 0) {
      gained.push_back(object);
      if (slot.waiters > 0) slot.waiter_cv.notify_all();
    }
    if (!slot.record.holds_any(owner)) lost.push_back(object);
  }
  if (!gained.empty()) {
    OwnerShard& shard = owner_shard_for(heir);
    const std::scoped_lock lock(shard.mutex);
    shard.held[heir].insert(gained.begin(), gained.end());
  }
  unindex(owner, lost);
}

void LockManager::on_commit_release(const ActionUid& owner, Colour colour) {
  std::vector<Uid> lost;
  for (const Uid& object : held_objects(owner)) {
    Stripe& stripe = stripe_for(object);
    const std::scoped_lock lock(stripe.mutex);
    auto it = stripe.slots.find(object);
    if (it == stripe.slots.end()) {
      lost.push_back(object);
      continue;
    }
    Slot& slot = it->second;
    if (slot.record.release_colour(owner, colour) > 0 && slot.waiters > 0) {
      slot.waiter_cv.notify_all();
    }
    if (!slot.record.holds_any(owner)) lost.push_back(object);
    reap_slot(stripe, object);
  }
  unindex(owner, lost);
}

void LockManager::on_abort(const ActionUid& owner) {
  for (const Uid& object : held_objects(owner)) {
    Stripe& stripe = stripe_for(object);
    const std::scoped_lock lock(stripe.mutex);
    auto it = stripe.slots.find(object);
    if (it == stripe.slots.end()) continue;
    Slot& slot = it->second;
    if (slot.record.drop_owner(owner) > 0 && slot.waiters > 0) {
      slot.waiter_cv.notify_all();
    }
    reap_slot(stripe, object);
  }
  {
    OwnerShard& shard = owner_shard_for(owner);
    const std::scoped_lock lock(shard.mutex);
    shard.held.erase(owner);
  }
  detector_.clear_waits_for(owner);
}

void LockManager::release_early(const ActionUid& owner, const Uid& object, Colour colour,
                                LockMode mode) {
  bool still_held = true;
  {
    Stripe& stripe = stripe_for(object);
    const std::scoped_lock lock(stripe.mutex);
    auto it = stripe.slots.find(object);
    if (it == stripe.slots.end()) return;
    Slot& slot = it->second;
    if (slot.record.release_entries(owner, colour, mode) > 0 && slot.waiters > 0) {
      slot.waiter_cv.notify_all();
    }
    still_held = slot.record.holds_any(owner);
    reap_slot(stripe, object);
  }
  if (!still_held) unindex(owner, {object});
}

void LockManager::clear() {
  // Wipe the owner index BEFORE the records. A waiter woken by the record
  // pass below can be granted and index itself while clear() is still
  // running; wiping shards last would destroy that fresh index entry and
  // leak the grant at commit/abort. In this order a racing grant either
  // keeps both its record and its index entry (granted "after" the crash)
  // or loses the record and leaves a stale index entry, which the commit
  // paths tolerate by skipping missing slots.
  for (auto& shard_ptr : owner_shards_) {
    const std::scoped_lock lock(shard_ptr->mutex);
    shard_ptr->held.clear();
  }
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    const std::scoped_lock lock(stripe.mutex);
    for (auto it = stripe.slots.begin(); it != stripe.slots.end();) {
      Slot& slot = it->second;
      slot.record.clear();
      if (slot.waiters > 0) {
        slot.waiter_cv.notify_all();
        ++it;
      } else {
        it = stripe.slots.erase(it);
      }
    }
  }
  detector_.clear();
}

std::vector<LockEntry> LockManager::entries(const Uid& object) const {
  const Stripe& stripe = stripe_for(object);
  const std::scoped_lock lock(stripe.mutex);
  auto it = stripe.slots.find(object);
  return it == stripe.slots.end() ? std::vector<LockEntry>{} : it->second.record.entries();
}

bool LockManager::holds(const ActionUid& owner, const Uid& object, LockMode mode,
                        Colour colour) const {
  const Stripe& stripe = stripe_for(object);
  const std::scoped_lock lock(stripe.mutex);
  auto it = stripe.slots.find(object);
  return it != stripe.slots.end() && it->second.record.holds(owner, mode, colour);
}

std::optional<Colour> LockManager::write_colour(const ActionUid& owner, const Uid& object) const {
  const Stripe& stripe = stripe_for(object);
  const std::scoped_lock lock(stripe.mutex);
  auto it = stripe.slots.find(object);
  return it == stripe.slots.end() ? std::nullopt : it->second.record.write_colour(owner);
}

std::size_t LockManager::locked_object_count() const {
  std::size_t n = 0;
  for (const auto& stripe_ptr : stripes_) {
    const std::scoped_lock lock(stripe_ptr->mutex);
    for (const auto& [object, slot] : stripe_ptr->slots) {
      if (!slot.record.empty()) ++n;
    }
  }
  return n;
}

LockManager::Stats LockManager::stats() const {
  Stats total;
  for (const auto& stripe_ptr : stripes_) {
    const std::scoped_lock lock(stripe_ptr->mutex);
    const Stats& s = stripe_ptr->stats;
    total.grants += s.grants;
    total.immediate_grants += s.immediate_grants;
    total.waits += s.waits;
    total.deadlocks += s.deadlocks;
    total.refusals += s.refusals;
    total.timeouts += s.timeouts;
    total.total_wait_micros += s.total_wait_micros;
  }
  return total;
}

void LockManager::reset_stats() {
  for (auto& stripe_ptr : stripes_) {
    const std::scoped_lock lock(stripe_ptr->mutex);
    stripe_ptr->stats = Stats{};
  }
}

}  // namespace mca
