// The (per-node) lock manager.
//
// Grants read / write / exclusive-read locks on object Uids to actions under
// the coloured rules of §5.2 (which, for single-coloured systems, coincide
// with the classical Moss rules — see lock/lock.h). Acquisition blocks, with
// wait-for-graph deadlock detection and a timeout backstop. Commit-time lock
// inheritance and release are driven by the action kernel, per colour.
//
// Internally the manager is sharded: object Uids hash onto N stripes, each
// with its own mutex, record map and stats, so lock traffic on unrelated
// objects never contends. Every record carries its own condition variable,
// so a release wakes only the waiters of that object — not every blocked
// action on the node. Commit/abort processing consults an owner index
// (owner → held object Uids, sharded by owner) instead of scanning all
// records, so it touches only the committing action's objects. The index
// relies on the kernel invariant that one action's acquire and its own
// commit/abort never run concurrently (the kernel sequences them; a grant
// that races termination is returned by release_early on the acquiring
// thread). The DeadlockDetector keeps its own mutex and sees the union of
// all stripes' wait-for edges. At most one manager mutex is held at a time,
// except the stripe → detector pair inside acquire — there is no other
// nesting, so no lock-order cycles.
//
// A single manager instance serves one node; in the distributed layer each
// simulated node owns one, and remote callers appear through ancestry paths
// registered by the RPC server.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/event_trace.h"
#include "lock/deadlock_detector.h"
#include "lock/lock.h"

namespace mca {

enum class LockOutcome {
  Granted,
  // The request conflicts with a lock the requester (or an ancestor) holds
  // in a different colour; waiting can never help (§5.2 write rule).
  Refused,
  Deadlock,
  Timeout,
};

[[nodiscard]] constexpr std::string_view to_string(LockOutcome o) {
  switch (o) {
    case LockOutcome::Granted: return "granted";
    case LockOutcome::Refused: return "refused";
    case LockOutcome::Deadlock: return "deadlock";
    case LockOutcome::Timeout: return "timeout";
  }
  return "?";
}

class LockManager {
 public:
  struct Stats {
    std::uint64_t grants = 0;
    std::uint64_t immediate_grants = 0;
    std::uint64_t waits = 0;
    std::uint64_t deadlocks = 0;
    std::uint64_t refusals = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t total_wait_micros = 0;
  };

  static constexpr std::chrono::milliseconds kDefaultTimeout{10'000};
  static constexpr std::size_t kDefaultStripes = 16;

  explicit LockManager(const Ancestry& ancestry, std::size_t stripes = kDefaultStripes);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Blocks until the lock is granted, the request is refused or deadlocked,
  // or `timeout` expires.
  [[nodiscard]] LockOutcome acquire(const ActionUid& requester, const Uid& object, LockMode mode,
                                    Colour colour,
                                    std::chrono::milliseconds timeout = kDefaultTimeout);

  // Commit processing for one colour of a committing action (§5.2):
  // inherit moves the locks to the closest same-coloured ancestor, release
  // drops them (outermost-in-colour commit).
  void on_commit_inherit(const ActionUid& owner, Colour colour, const ActionUid& heir);
  void on_commit_release(const ActionUid& owner, Colour colour);

  // Abort processing: every lock of every colour/mode is discarded.
  void on_abort(const ActionUid& owner);

  // Early release of transfer locks by structure actions (glued-action
  // "unglue", fig. 9). `owner` must be a read-only structure action; this is
  // outside plain two-phase locking and is documented as such.
  void release_early(const ActionUid& owner, const Uid& object, Colour colour, LockMode mode);

  // Crash simulation: drops every lock and wait-for edge (volatile state of
  // a failed node) and wakes all waiters so blocked callers re-evaluate.
  void clear();

  // -- introspection ---------------------------------------------------------

  [[nodiscard]] std::vector<LockEntry> entries(const Uid& object) const;
  [[nodiscard]] bool holds(const ActionUid& owner, const Uid& object, LockMode mode,
                           Colour colour) const;
  // The colour of `owner`'s WRITE lock on `object`, if any (cheaper than
  // copying entries() just to find it).
  [[nodiscard]] std::optional<Colour> write_colour(const ActionUid& owner,
                                                   const Uid& object) const;
  [[nodiscard]] std::size_t locked_object_count() const;
  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  // Optional event tracing (owned by the Runtime).
  void set_trace(EventTrace* trace) { trace_ = trace; }

 private:
  // One lock record plus its wait queue. The condition variable belongs to
  // the record so releases wake only this object's waiters; the slot stays
  // in the map while `waiters > 0` even if the record empties, so a blocked
  // acquire never sleeps on a destroyed condition variable.
  struct Slot {
    LockRecord record;
    std::condition_variable waiter_cv;
    std::size_t waiters = 0;
  };

  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<Uid, Slot> slots;
    Stats stats;
  };

  // One shard of the owner index: owner → objects on which the owner holds
  // ≥1 entry (in any stripe). Sharded by owner Uid so commits by unrelated
  // actions do not contend.
  struct OwnerShard {
    mutable std::mutex mutex;
    std::unordered_map<ActionUid, std::unordered_set<Uid>> held;
  };

  [[nodiscard]] Stripe& stripe_for(const Uid& object) {
    return *stripes_[std::hash<Uid>{}(object) % stripes_.size()];
  }
  [[nodiscard]] const Stripe& stripe_for(const Uid& object) const {
    return *stripes_[std::hash<Uid>{}(object) % stripes_.size()];
  }
  [[nodiscard]] OwnerShard& owner_shard_for(const ActionUid& owner) {
    return *owner_shards_[std::hash<Uid>{}(owner) % owner_shards_.size()];
  }

  // The owner's held-object set, copied out under the shard mutex.
  [[nodiscard]] std::vector<Uid> held_objects(const ActionUid& owner);
  // Removes `objects` from the owner's set (erasing the owner when empty).
  void unindex(const ActionUid& owner, const std::vector<Uid>& objects);

  // Erases `object`'s slot when it holds neither entries nor waiters.
  // Call with the stripe mutex held.
  static void reap_slot(Stripe& stripe, const Uid& object);

  void trace_event(TraceKind kind, const ActionUid& action, const Uid& object,
                   std::string detail) {
    if (trace_ != nullptr) trace_->record(kind, action, object, std::move(detail));
  }

  EventTrace* trace_ = nullptr;
  const Ancestry& ancestry_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::vector<std::unique_ptr<OwnerShard>> owner_shards_;
  DeadlockDetector detector_;
};

}  // namespace mca
