// The (per-node) lock manager.
//
// Grants read / write / exclusive-read locks on object Uids to actions under
// the coloured rules of §5.2 (which, for single-coloured systems, coincide
// with the classical Moss rules — see lock/lock.h). Acquisition blocks, with
// wait-for-graph deadlock detection and a timeout backstop. Commit-time lock
// inheritance and release are driven by the action kernel, per colour.
//
// A single manager instance serves one node; in the distributed layer each
// simulated node owns one, and remote callers appear through ancestry paths
// registered by the RPC server.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <unordered_map>

#include "common/event_trace.h"
#include "lock/deadlock_detector.h"
#include "lock/lock.h"

namespace mca {

enum class LockOutcome {
  Granted,
  // The request conflicts with a lock the requester (or an ancestor) holds
  // in a different colour; waiting can never help (§5.2 write rule).
  Refused,
  Deadlock,
  Timeout,
};

[[nodiscard]] constexpr std::string_view to_string(LockOutcome o) {
  switch (o) {
    case LockOutcome::Granted: return "granted";
    case LockOutcome::Refused: return "refused";
    case LockOutcome::Deadlock: return "deadlock";
    case LockOutcome::Timeout: return "timeout";
  }
  return "?";
}

class LockManager {
 public:
  struct Stats {
    std::uint64_t grants = 0;
    std::uint64_t immediate_grants = 0;
    std::uint64_t waits = 0;
    std::uint64_t deadlocks = 0;
    std::uint64_t refusals = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t total_wait_micros = 0;
  };

  static constexpr std::chrono::milliseconds kDefaultTimeout{10'000};

  explicit LockManager(const Ancestry& ancestry) : ancestry_(ancestry) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Blocks until the lock is granted, the request is refused or deadlocked,
  // or `timeout` expires.
  [[nodiscard]] LockOutcome acquire(const ActionUid& requester, const Uid& object, LockMode mode,
                                    Colour colour,
                                    std::chrono::milliseconds timeout = kDefaultTimeout);

  // Commit processing for one colour of a committing action (§5.2):
  // inherit moves the locks to the closest same-coloured ancestor, release
  // drops them (outermost-in-colour commit).
  void on_commit_inherit(const ActionUid& owner, Colour colour, const ActionUid& heir);
  void on_commit_release(const ActionUid& owner, Colour colour);

  // Abort processing: every lock of every colour/mode is discarded.
  void on_abort(const ActionUid& owner);

  // Early release of transfer locks by structure actions (glued-action
  // "unglue", fig. 9). `owner` must be a read-only structure action; this is
  // outside plain two-phase locking and is documented as such.
  void release_early(const ActionUid& owner, const Uid& object, Colour colour, LockMode mode);

  // Crash simulation: drops every lock and wait-for edge (volatile state of
  // a failed node) and wakes all waiters so blocked callers re-evaluate.
  void clear();

  // -- introspection ---------------------------------------------------------

  [[nodiscard]] std::vector<LockEntry> entries(const Uid& object) const;
  [[nodiscard]] bool holds(const ActionUid& owner, const Uid& object, LockMode mode,
                           Colour colour) const;
  [[nodiscard]] std::size_t locked_object_count() const;
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  // Optional event tracing (owned by the Runtime).
  void set_trace(EventTrace* trace) { trace_ = trace; }

 private:
  void trace_event(TraceKind kind, const ActionUid& action, const Uid& object,
                   std::string detail) {
    if (trace_ != nullptr) trace_->record(kind, action, object, std::move(detail));
  }

  EventTrace* trace_ = nullptr;
  const Ancestry& ancestry_;
  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::unordered_map<Uid, LockRecord> records_;
  DeadlockDetector detector_;
  Stats stats_;
};

}  // namespace mca
