// Lock entries and the per-object lock record.
//
// An object's lock record holds the set of granted lock entries
// (owner action, mode, colour) plus grant-rule evaluation. The grant rules
// implement both regimes of §5.2:
//
//   * classical (Moss) rules — what a single-coloured system obeys;
//   * coloured rules — identical except that a WRITE in colour `a`
//     additionally requires every existing WRITE lock on the object to be
//     coloured `a`.
//
// Because the coloured rules with one global colour degenerate to exactly
// the classical ones, the lock manager always evaluates the coloured rules;
// a dedicated classical evaluator is kept for cross-validation in tests.
#pragma once

#include <optional>
#include <vector>

#include "core/colour.h"
#include "lock/ancestry.h"
#include "lock/lock_mode.h"

namespace mca {

struct LockEntry {
  ActionUid owner = ActionUid::nil();
  LockMode mode = LockMode::Read;
  Colour colour = Colour::plain();
  // Recursive acquisitions by the same (owner, mode, colour).
  unsigned count = 1;
};

// Why a request cannot be granted right now.
enum class GrantVerdict {
  Granted,
  // Conflicts with locks held by non-ancestors: waiting may succeed once
  // those actions finish.
  MustWait,
  // Conflicts only with locks held by the requester itself or its ancestors
  // (e.g. a differently-coloured WRITE lock). Those locks cannot be released
  // while the requester runs, so waiting would block forever; the request is
  // refused outright.
  Unresolvable,
};

class LockRecord {
 public:
  // Evaluates the coloured grant rules of §5.2 for `requester` asking for
  // (`mode`, `colour`).
  [[nodiscard]] GrantVerdict evaluate(const ActionUid& requester, LockMode mode, Colour colour,
                                      const Ancestry& ancestry) const;

  // Classical Moss rules (colour-blind); used by tests to check that a
  // single-coloured run of the coloured rules agrees with them.
  [[nodiscard]] GrantVerdict evaluate_classical(const ActionUid& requester, LockMode mode,
                                                const Ancestry& ancestry) const;

  // Adds a granted entry, merging with an identical existing one.
  void add(const ActionUid& owner, LockMode mode, Colour colour);

  // Removes every entry owned by `owner` (all modes/colours). Returns the
  // number of entries removed.
  std::size_t drop_owner(const ActionUid& owner);

  // Moves every entry of `owner` with colour `colour` to `heir`, merging
  // with the heir's identical entries (commit-time inheritance, §5.2).
  // Returns the number of entries moved.
  std::size_t inherit(const ActionUid& owner, Colour colour, const ActionUid& heir);

  // Removes every entry of `owner` with colour `colour` (outermost-in-colour
  // commit: the updates become permanent and the locks are released).
  // Returns the number of entries removed.
  std::size_t release_colour(const ActionUid& owner, Colour colour);

  // Removes `owner`'s entries of colour `colour` on behalf of structure
  // actions that relinquish transfer locks early (glued-action unglue).
  // Returns the number of entries removed.
  std::size_t release_entries(const ActionUid& owner, Colour colour, LockMode mode);

  // Drops every entry (crash simulation).
  void clear() { entries_.clear(); }

  // Owners whose locks currently block the given request (for the wait-for
  // graph).
  [[nodiscard]] std::vector<ActionUid> blockers(const ActionUid& requester, LockMode mode,
                                                Colour colour, const Ancestry& ancestry) const;

  [[nodiscard]] const std::vector<LockEntry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool holds(const ActionUid& owner, LockMode mode, Colour colour) const;
  [[nodiscard]] bool holds_any(const ActionUid& owner) const;

  // The colour of `owner`'s WRITE entry, if it holds one. The grant rules
  // keep all WRITE locks on one object the same colour, so this is unique.
  [[nodiscard]] std::optional<Colour> write_colour(const ActionUid& owner) const;

 private:
  std::vector<LockEntry> entries_;
};

}  // namespace mca
