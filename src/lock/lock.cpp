#include "lock/lock.h"

#include <algorithm>

namespace mca {
namespace {

bool anc(const LockEntry& e, const ActionUid& requester, const Ancestry& ancestry) {
  return ancestry.is_ancestor_or_same(e.owner, requester);
}

}  // namespace

GrantVerdict LockRecord::evaluate(const ActionUid& requester, LockMode mode, Colour colour,
                                  const Ancestry& ancestry) const {
  switch (mode) {
    case LockMode::Read:
      // READ in colour a: every WRITE/XR holder must be an ancestor (or the
      // requester). READ holders never block a READ. The colour of the
      // request plays no part (§5.2).
      for (const LockEntry& e : entries_) {
        if (is_exclusive(e.mode) && !anc(e, requester, ancestry)) return GrantVerdict::MustWait;
      }
      return GrantVerdict::Granted;

    case LockMode::ExclusiveRead:
      // XR in colour a: every holder, of any colour and mode, must be an
      // ancestor (or the requester).
      for (const LockEntry& e : entries_) {
        if (!anc(e, requester, ancestry)) return GrantVerdict::MustWait;
      }
      return GrantVerdict::Granted;

    case LockMode::Write: {
      // WRITE in colour a: every holder must be an ancestor AND every WRITE
      // lock on the object must itself be coloured a. A differently-coloured
      // WRITE held by an ancestor (or by the requester itself) can never be
      // released while the requester runs, so that case is unresolvable
      // rather than waitable.
      bool ancestor_colour_clash = false;
      for (const LockEntry& e : entries_) {
        if (!anc(e, requester, ancestry)) return GrantVerdict::MustWait;
        if (e.mode == LockMode::Write && e.colour != colour) ancestor_colour_clash = true;
      }
      return ancestor_colour_clash ? GrantVerdict::Unresolvable : GrantVerdict::Granted;
    }
  }
  return GrantVerdict::MustWait;
}

GrantVerdict LockRecord::evaluate_classical(const ActionUid& requester, LockMode mode,
                                            const Ancestry& ancestry) const {
  switch (mode) {
    case LockMode::Read:
      for (const LockEntry& e : entries_) {
        if (is_exclusive(e.mode) && !anc(e, requester, ancestry)) return GrantVerdict::MustWait;
      }
      return GrantVerdict::Granted;
    case LockMode::Write:
    case LockMode::ExclusiveRead:
      for (const LockEntry& e : entries_) {
        if (!anc(e, requester, ancestry)) return GrantVerdict::MustWait;
      }
      return GrantVerdict::Granted;
  }
  return GrantVerdict::MustWait;
}

void LockRecord::add(const ActionUid& owner, LockMode mode, Colour colour) {
  for (LockEntry& e : entries_) {
    if (e.owner == owner && e.mode == mode && e.colour == colour) {
      ++e.count;
      return;
    }
  }
  entries_.push_back(LockEntry{owner, mode, colour, 1});
}

std::size_t LockRecord::drop_owner(const ActionUid& owner) {
  const auto before = entries_.size();
  std::erase_if(entries_, [&](const LockEntry& e) { return e.owner == owner; });
  return before - entries_.size();
}

std::size_t LockRecord::inherit(const ActionUid& owner, Colour colour, const ActionUid& heir) {
  // Collect the entries being passed up, then merge them into the heir's.
  std::vector<LockEntry> moving;
  std::erase_if(entries_, [&](const LockEntry& e) {
    if (e.owner == owner && e.colour == colour) {
      moving.push_back(e);
      return true;
    }
    return false;
  });
  for (const LockEntry& m : moving) {
    bool merged = false;
    for (LockEntry& e : entries_) {
      if (e.owner == heir && e.mode == m.mode && e.colour == m.colour) {
        e.count += m.count;
        merged = true;
        break;
      }
    }
    if (!merged) entries_.push_back(LockEntry{heir, m.mode, m.colour, m.count});
  }
  return moving.size();
}

std::size_t LockRecord::release_colour(const ActionUid& owner, Colour colour) {
  return std::erase_if(
      entries_, [&](const LockEntry& e) { return e.owner == owner && e.colour == colour; });
}

std::size_t LockRecord::release_entries(const ActionUid& owner, Colour colour, LockMode mode) {
  return std::erase_if(entries_, [&](const LockEntry& e) {
    return e.owner == owner && e.colour == colour && e.mode == mode;
  });
}

std::vector<ActionUid> LockRecord::blockers(const ActionUid& requester, LockMode mode,
                                            Colour colour, const Ancestry& ancestry) const {
  (void)colour;  // colour clashes with ancestors are unresolvable, not waitable
  std::vector<ActionUid> out;
  for (const LockEntry& e : entries_) {
    const bool relevant = (mode == LockMode::Read) ? is_exclusive(e.mode) : true;
    if (relevant && !anc(e, requester, ancestry)) out.push_back(e.owner);
  }
  return out;
}

bool LockRecord::holds(const ActionUid& owner, LockMode mode, Colour colour) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const LockEntry& e) {
    return e.owner == owner && e.mode == mode && e.colour == colour;
  });
}

bool LockRecord::holds_any(const ActionUid& owner) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const LockEntry& e) { return e.owner == owner; });
}

std::optional<Colour> LockRecord::write_colour(const ActionUid& owner) const {
  for (const LockEntry& e : entries_) {
    if (e.owner == owner && e.mode == LockMode::Write) return e.colour;
  }
  return std::nullopt;
}

}  // namespace mca
