#include "lock/deadlock_detector.h"

namespace mca {

void DeadlockDetector::set_waits_for(const Uid& waiter, const std::vector<Uid>& holders) {
  const std::scoped_lock lock(mutex_);
  auto& out = edges_[waiter];
  out.clear();
  out.insert(holders.begin(), holders.end());
}

void DeadlockDetector::clear_waits_for(const Uid& waiter) {
  const std::scoped_lock lock(mutex_);
  edges_.erase(waiter);
}

void DeadlockDetector::clear() {
  const std::scoped_lock lock(mutex_);
  edges_.clear();
}

bool DeadlockDetector::on_cycle(const Uid& waiter) const {
  const std::scoped_lock lock(mutex_);
  // Iterative DFS from `waiter`, looking for a path back to it.
  std::unordered_set<Uid> visited;
  std::vector<Uid> stack;
  stack.push_back(waiter);
  while (!stack.empty()) {
    const Uid node = stack.back();
    stack.pop_back();
    auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (const Uid& next : it->second) {
      if (next == waiter) return true;
      if (visited.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

std::size_t DeadlockDetector::edge_count() const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [from, to] : edges_) n += to.size();
  return n;
}

}  // namespace mca
