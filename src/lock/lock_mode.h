// Lock modes (paper §5.2).
//
// Three modes: READ (shared), WRITE (exclusive), and EXCLUSIVE-READ — a mode
// the paper introduces "purely to enable a coloured system to implement the
// action structures of section 3": it lets a structure action retain an
// object exclusively (nobody outside may read or write it) without itself
// writing, which is how locks are carried across the gap between glued or
// serialized constituents.
#pragma once

#include <string_view>

namespace mca {

enum class LockMode { Read, Write, ExclusiveRead };

[[nodiscard]] constexpr std::string_view to_string(LockMode m) {
  switch (m) {
    case LockMode::Read: return "read";
    case LockMode::Write: return "write";
    case LockMode::ExclusiveRead: return "xread";
  }
  return "?";
}

// True for the modes that exclude all other holders (WRITE and XR).
[[nodiscard]] constexpr bool is_exclusive(LockMode m) { return m != LockMode::Read; }

}  // namespace mca
