// Meeting scheduler over glued actions (paper §4 v, fig. 9).
//
// Three users' diaries, a few existing appointments, and a multi-round
// narrowing protocol: each round is permanent, rejected slots are released
// as the protocol runs, and the locked footprint shrinks round by round.
//
//   ./build/examples/meeting_scheduler
#include <cstdio>

#include "apps/diary/scheduler.h"

using namespace mca;

int main() {
  Runtime rt;
  Diary alice(rt, "alice", 10);
  Diary bob(rt, "bob", 10);
  Diary carol(rt, "carol", 10);

  // Pre-existing appointments.
  struct {
    Diary* diary;
    std::size_t time;
    const char* what;
  } appointments[] = {
      {&alice, 0, "dentist"}, {&alice, 3, "1:1"},      {&bob, 1, "gym"},
      {&bob, 3, "review"},    {&carol, 2, "daycare"},  {&carol, 6, "travel"},
  };
  for (const auto& appt : appointments) {
    AtomicAction a(rt);
    a.begin();
    appt.diary->slot(appt.time).book(appt.what);
    a.commit();
  }

  MeetingScheduler scheduler(rt, {&alice, &bob, &carol});
  ScheduleResult result = scheduler.schedule("project kickoff", /*rounds=*/4);

  if (!result.scheduled) {
    std::printf("no meeting possible: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("meeting booked at time %zu after %zu rounds\n", result.chosen_time,
              result.rounds_run);
  std::printf("glued (still-locked) slots after each round:");
  for (const std::size_t n : result.glued_after_round) std::printf(" %zu", n);
  std::printf("\n(the shrinking footprint is fig. 9's point: rejected slots are\n"
              " released mid-protocol instead of staying locked to the end)\n");

  // Show the final diary states.
  AtomicAction view(rt);
  view.begin();
  for (Diary* d : {&alice, &bob, &carol}) {
    std::printf("%-6s:", d->owner().c_str());
    for (std::size_t t = 0; t < d->slot_count(); ++t) {
      std::printf(" %s", d->slot(t).booked() ? "X" : ".");
    }
    std::printf("\n");
  }
  view.commit();
  return 0;
}
