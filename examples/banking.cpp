// Distributed banking: one atomic action across two server nodes, with
// billing as an independent action (paper §2 commit protocol + §4 iii).
//
// A transfer debits an account on node 2 and credits one on node 3; the
// action's two-phase commit spans both nodes, so a crash before the commit
// decision aborts cleanly on both sides. The per-transfer fee is charged
// through a top-level independent action and is kept even when the transfer
// aborts.
//
//   ./build/examples/banking
#include <cstdio>

#include "apps/billing/billing.h"
#include "dist/remote.h"
#include "sim/network.h"

using namespace mca;

int main() {
  Network net;
  DistNode client(net, 1);
  DistNode branch_a(net, 2);
  DistNode branch_b(net, 3);

  RecoverableInt account_a(branch_a.runtime(), 1'000);
  RecoverableInt account_b(branch_b.runtime(), 500);
  branch_a.host(account_a);
  branch_b.host(account_b);
  RemoteInt remote_a(client, 2, account_a.uid());
  RemoteInt remote_b(client, 3, account_b.uid());

  RecoverableInt fees(client.runtime(), 0);
  RecoverableLog audit(client.runtime());
  BillingMeter billing(client.runtime(), fees, audit);

  auto transfer = [&](std::int64_t amount, bool fail_mid_way) {
    AtomicAction action(client.runtime());
    action.begin();
    billing.charge("alice", 1);  // independent: survives even an abort
    remote_a.add(-amount);
    if (fail_mid_way) {
      std::printf("transfer of %lld: application failure, aborting\n",
                  static_cast<long long>(amount));
      action.abort();
      return;
    }
    remote_b.add(amount);
    const Outcome outcome = action.commit();
    std::printf("transfer of %lld: %s\n", static_cast<long long>(amount),
                outcome == Outcome::Committed ? "committed on both branches" : "aborted");
  };

  transfer(200, /*fail_mid_way=*/false);
  transfer(300, /*fail_mid_way=*/true);  // debit rolled back at branch A

  AtomicAction report(client.runtime());
  report.begin();
  std::printf("account A = %lld (expected 800: only the first transfer debited)\n",
              static_cast<long long>(remote_a.value()));
  std::printf("account B = %lld (expected 700)\n",
              static_cast<long long>(remote_b.value()));
  report.commit();
  std::printf("fees collected = %lld (expected 2: the fee for the aborted\n"
              "transfer was charged through an independent action)\n",
              static_cast<long long>(billing.total()));
  return 0;
}
