// Fault-tolerant *distributed* make (paper §4 iv, fig. 8).
//
// The paper's own makefile, with the files scattered over two workstation
// nodes and the make engine driving them from a third over the (lossy)
// network. Serializing-action fault tolerance across the wire: a failure
// while relinking leaves the object files — already committed on their home
// nodes — consistent, so the retry only redoes the link. A node crash
// mid-make behaves the same way.
//
//   ./build/examples/distributed_make
#include <cstdio>

#include "dist/remote_files.h"
#include "sim/network.h"

using namespace mca;

namespace {

constexpr const char* kMakefile = R"(
Test: Test0.o Test1.o
	cc -o Test Test0.o Test1.o
Test0.o: Test0.h Test1.h Test0.c
	cc -c Test0.c
Test1.o: Test1.h Test1.c
	cc -c Test1.c
)";

void print_report(const char* label, const MakeReport& report) {
  std::printf("%-28s ok=%-5s checked=%zu rebuilt=[", label, report.ok ? "true" : "false",
              report.targets_checked);
  for (std::size_t i = 0; i < report.rebuilt.size(); ++i) {
    std::printf("%s%s", i != 0 ? " " : "", report.rebuilt[i].c_str());
  }
  std::printf("]%s%s\n", report.error.empty() ? "" : " error=", report.error.c_str());
}

}  // namespace

int main() {
  NetworkConfig config;
  config.loss_probability = 0.02;  // a slightly lossy LAN, masked by RPC retries
  Network net(config);
  DistNode driver(net, 1);   // where make runs
  DistNode node_a(net, 2);   // hosts the sources and Test0.o
  DistNode node_b(net, 3);   // hosts Test1.o and the linked Test
  driver.set_invoke_timeout(std::chrono::milliseconds(3'000));

  RemoteFileTable files(driver);
  for (const char* name : {"Test0.h", "Test1.h", "Test0.c", "Test1.c", "Test0.o"}) {
    files.create_hosted(name, node_a);
  }
  files.create_hosted("Test1.o", node_b);
  files.create_hosted("Test", node_b);

  // Create the sources (written remotely from the driver).
  for (const char* name : {"Test0.h", "Test1.h", "Test0.c", "Test1.c"}) {
    AtomicAction a(driver.runtime());
    a.begin();
    files.file(name).write(std::string("source of ") + name);
    a.commit();
  }

  MakeEngine engine(driver.runtime(), Makefile::parse(kMakefile), files);

  std::printf("files: node 2 hosts the sources + Test0.o; node 3 hosts Test1.o + Test\n");
  print_report("full distributed build:", engine.run("Test"));

  // Inject a failure while relinking: the object files, committed at their
  // home nodes, survive; only the link is redone.
  {
    AtomicAction a(driver.runtime());
    a.begin();
    files.file("Test0.c").write("edited Test0.c");
    a.commit();
  }
  engine.fail_on_target("Test");
  print_report("crash while linking:", engine.run("Test"));
  print_report("retry after crash:", engine.run("Test"));

  // A whole node crashes mid-make: the make aborts; committed work stays.
  {
    AtomicAction a(driver.runtime());
    a.begin();
    files.file("Test1.c").write("edited Test1.c");
    a.commit();
  }
  driver.set_invoke_timeout(std::chrono::milliseconds(300));
  node_b.crash();
  print_report("node 3 down during make:", engine.run("Test"));
  node_b.restart();
  driver.set_invoke_timeout(std::chrono::milliseconds(3'000));
  print_report("after node 3 recovers:", engine.run("Test"));

  const auto stats = net.stats();
  std::printf("network: %llu msgs, %llu lost (masked), %llu dropped at down node\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.lost),
              static_cast<unsigned long long>(stats.dropped_down));
  return 0;
}
