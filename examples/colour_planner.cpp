// Automatic colour assignment (paper §6): describe the intended action
// structure declaratively, let the planner mint the colours, inspect the
// plan, validate it, and run it.
//
//   ./build/examples/colour_planner
#include <cstdio>

#include "core/structures/colour_plan.h"
#include "objects/recoverable_int.h"

using namespace mca;

int main() {
  // The paper's fig. 15 system: A{red,blue} > B{red} > {C green, D red,
  // E blue}; F green under A — expressed as intent, not colours.
  auto fig15 = StructureSpec::plain(
      "A", {StructureSpec::plain("B", {StructureSpec::independent("C", 0),
                                       StructureSpec::plain("D"),
                                       StructureSpec::independent("E", 2)}),
            StructureSpec::independent("F", 0)});
  ColourPlan plan15 = ColourPlan::plan(fig15);
  std::printf("fig. 15 colouring, generated automatically:\n%s\n",
              plan15.to_string().c_str());
  std::printf("validation: %zu violation(s)\n\n", plan15.validate(fig15).size());

  // The distributed-make shape (fig. 8): a serializing action with three
  // constituents.
  auto make_spec = StructureSpec::serializing(
      "make", {StructureSpec::plain("build Test0.o"), StructureSpec::plain("build Test1.o"),
               StructureSpec::plain("link Test")});
  ColourPlan make_plan = ColourPlan::plan(make_spec);
  std::printf("fig. 8 distributed make:\n%s\n", make_plan.to_string().c_str());

  // Drive a real coloured system straight from a plan: the serializing
  // property falls out of the generated colours.
  auto spec = StructureSpec::serializing("ser", {StructureSpec::plain("step")});
  ColourPlan plan = ColourPlan::plan(spec);
  const auto& encloser = plan.assignment_of("ser");
  const auto& step = plan.assignment_of("step");

  Runtime rt;
  RecoverableInt obj(rt, 0);
  AtomicAction ser(rt, nullptr, encloser.colours);
  ser.begin(AtomicAction::ContextPolicy::Detached);
  {
    AtomicAction constituent(rt, &ser, step.colours);
    constituent.set_lock_plan(step.lock_plan);
    constituent.begin(AtomicAction::ContextPolicy::Detached);
    ActionContext::push(constituent);
    obj.set(42);
    ActionContext::pop(constituent);
    constituent.commit();
  }
  ser.abort();  // serializing: the constituent's work survives

  AtomicAction check(rt);
  check.begin();
  std::printf("ran the generated plan: constituent wrote 42, encloser aborted, value=%lld\n",
              static_cast<long long>(obj.value()));
  check.commit();
  return 0;
}
