// Quickstart: persistent objects, atomic actions, nesting, and a first
// taste of colours.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/atomic_action.h"
#include "objects/recoverable_int.h"

using namespace mca;

int main() {
  Runtime rt;  // lock manager + stable in-memory object store

  // Two persistent bank accounts.
  RecoverableInt checking(rt, 1'000);
  RecoverableInt savings(rt, 5'000);

  // 1. A top-level atomic action: both updates or neither.
  {
    AtomicAction transfer(rt);
    transfer.begin();
    checking.add(-200);
    savings.add(200);
    transfer.commit();
  }

  // 2. Abort rolls everything back, even past a committed nested action.
  {
    AtomicAction outer(rt);
    outer.begin();
    {
      AtomicAction inner(rt);  // inherits outer's colour: classical nesting
      inner.begin();
      checking.add(-999);
      inner.commit();  // provisional: rides on outer
    }
    outer.abort();  // inner's update is undone
  }

  // 3. A differently-coloured nested action is *independent*: its commit is
  //    permanent even though the invoker aborts (paper fig. 13).
  RecoverableInt audit_counter(rt, 0);
  {
    AtomicAction application(rt);
    application.begin();
    {
      AtomicAction audit(rt, ColourSet{Colour::fresh("audit")});
      audit.begin();
      audit_counter.add(1);
      audit.commit();  // permanent now
    }
    application.abort();  // does not touch the audit trail
  }

  AtomicAction report(rt);
  report.begin();
  std::printf("checking       = %lld (expected 800)\n",
              static_cast<long long>(checking.value()));
  std::printf("savings        = %lld (expected 5200)\n",
              static_cast<long long>(savings.value()));
  std::printf("audit counter  = %lld (expected 1, survived the abort)\n",
              static_cast<long long>(audit_counter.value()));
  report.commit();
  return 0;
}
