// Order processing: a long-lived application function structured the way
// the paper argues such functions should be (§3) — staged glued actions
// with per-stage permanence, early lock release, and compensation.
//
//   ./build/examples/order_processing
#include <cstdio>

#include "apps/pipeline/pipeline.h"
#include "objects/recoverable_int.h"

using namespace mca;

namespace {

void show(Runtime& rt, RecoverableLog& audit, RecoverableInt& inventory,
          RecoverableInt& revenue) {
  AtomicAction a(rt);
  a.begin();
  std::printf("  inventory=%lld revenue=%lld\n  audit:\n",
              static_cast<long long>(inventory.value()),
              static_cast<long long>(revenue.value()));
  for (const auto& line : audit.entries()) std::printf("    %s\n", line.c_str());
  a.commit();
}

}  // namespace

int main() {
  Runtime rt;
  RecoverableLog audit(rt);
  RecoverableInt inventory(rt, 10);
  RecoverableInt revenue(rt, 0);
  RecoverableInt order_state(rt, 0);  // 0=new 1=validated 2=reserved 3=shipped

  auto build_pipeline = [&](bool carrier_down) {
    Pipeline p(rt, &audit);
    p.stage("validate",
            [&](StageContext& ctx) {
              order_state.set(1);
              ctx.pass_on(order_state);
              ctx.audit("order accepted");
            })
        .stage(
            "reserve+charge",
            [&](StageContext& ctx) {
              inventory.add(-1);
              revenue.add(99);
              order_state.set(2);
              ctx.pass_on(order_state);
            },
            [&] {  // compensator: refund + restock
              inventory.add(1);
              revenue.add(-99);
            })
        .stage("ship", [&, carrier_down](StageContext& ctx) {
          if (carrier_down) throw std::runtime_error("carrier unavailable");
          order_state.set(3);
          ctx.audit("handed to carrier");
        });
    return p;
  };

  std::printf("order #1 (everything works):\n");
  PipelineResult ok = build_pipeline(false).run();
  std::printf("  completed=%s stages=%zu\n", ok.completed ? "yes" : "no", ok.stages_run);
  show(rt, audit, inventory, revenue);

  std::printf("\norder #2 (carrier down at the last stage):\n");
  PipelineResult failed = build_pipeline(true).run();
  std::printf("  completed=%s failed_stage=%s compensations=%zu\n",
              failed.completed ? "yes" : "no", failed.failed_stage.c_str(),
              failed.compensations_run);
  show(rt, audit, inventory, revenue);
  std::printf("\nnote: the charge and reservation of order #2 were compensated —\n"
              "inventory and revenue reflect order #1 only, while every committed\n"
              "stage's audit trail is permanent history.\n");
  return 0;
}
