// Bulletin board via top-level independent actions (paper §4 i).
//
// A long-running application posts to a shared board. Because the post runs
// as a top-level independent action, it is visible to other users
// immediately — the board is never held locked by the application — and it
// survives the application's eventual abort, after which a *compensating*
// action retracts it.
//
//   ./build/examples/bulletin_board
#include <cstdio>

#include "apps/bboard/bulletin_board.h"

using namespace mca;

namespace {

void show(Runtime& rt, BulletinBoard& board, const char* label) {
  AtomicAction view(rt);
  view.begin();
  std::printf("%s (%zu active):\n", label, board.active_count());
  for (const auto& p : board.postings()) {
    std::printf("  #%llu [%s] %s%s\n", static_cast<unsigned long long>(p.id),
                p.author.c_str(), p.body.c_str(), p.retracted ? "  (retracted)" : "");
  }
  view.commit();
}

}  // namespace

int main() {
  Runtime rt;
  BulletinBoard board(rt);

  // Someone else posts first.
  BulletinBoard::post_independent(rt, board, "ann", "lab meeting moved to 3pm");

  std::optional<std::uint64_t> sale_id;
  {
    AtomicAction application(rt);  // a long-running piece of work
    application.begin();

    sale_id = BulletinBoard::post_independent(rt, board, "bob", "bike for sale, 50 GBP");
    show(rt, board, "mid-application view (another user)");

    // ... the application fails and aborts; the post is NOT undone ...
    application.abort();
  }
  show(rt, board, "after application abort");

  // The paper: "it may well be necessary to invoke a compensating top-level
  // action; this is consistent with the manner in which bulletin boards are
  // used."
  if (sale_id) BulletinBoard::retract_independent(rt, board, *sale_id);
  show(rt, board, "after compensation");
  return 0;
}
