// Replicated name server on simulated nodes (paper §4 ii).
//
// Three replicas on three nodes, updates as top-level independent actions
// (they survive the invoking application's abort), read-one failover when a
// replica crashes, and resynchronisation when it returns.
//
//   ./build/examples/name_server
#include <cstdio>

#include "apps/names/name_server.h"
#include "objects/recoverable_map.h"
#include "sim/network.h"

using namespace mca;

int main() {
  NetworkConfig config;
  config.loss_probability = 0.05;  // a slightly lossy LAN
  config.min_delay = std::chrono::microseconds(50);
  config.max_delay = std::chrono::microseconds(500);
  Network net(config);

  DistNode client(net, 1);
  DistNode replica_a(net, 2);
  DistNode replica_b(net, 3);
  DistNode replica_c(net, 4);

  RecoverableMap map_a(replica_a.runtime());
  RecoverableMap map_b(replica_b.runtime());
  RecoverableMap map_c(replica_c.runtime());
  replica_a.host(map_a);
  replica_b.host(map_b);
  replica_c.host(map_c);
  client.set_invoke_timeout(std::chrono::milliseconds(1'000));

  ReplicatedMap replicas({RemoteMap(client, 2, map_a.uid()), RemoteMap(client, 3, map_b.uid()),
                          RemoteMap(client, 4, map_c.uid())});
  replicas.set_write_quorum(2);
  NameServer names(client.runtime(), replicas);

  // An application registers a service; its own action later aborts, but
  // the name-server update is independent and survives.
  {
    AtomicAction app(client.runtime());
    app.begin();
    names.add("object-17", "node 4, store 2");
    app.abort();
  }
  auto loc = names.lookup("object-17");
  std::printf("object-17 -> %s  (update survived the application abort)\n",
              loc ? loc->c_str() : "<missing>");

  // A replica crashes; lookups fail over, writes proceed on the quorum.
  replica_a.crash();
  std::printf("replica on node 2 crashed\n");
  names.add("object-18", "node 7, store 1");
  loc = names.lookup("object-18");
  std::printf("object-18 -> %s  (written on 2/3 replicas)\n",
              loc ? loc->c_str() : "<missing>");

  // The replica returns and is resynchronised.
  replica_a.restart();
  {
    AtomicAction a(client.runtime());
    a.begin();
    replicas.resync(0);
    a.commit();
  }
  std::printf("replica on node 2 restarted and resynced (stale=%s)\n",
              replicas.stale(0) ? "true" : "false");

  const auto stats = net.stats();
  std::printf("network: %llu sent, %llu delivered, %llu lost (masked by RPC retries)\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.lost));
  return 0;
}
