// Timeline renderer: executes the paper's action structures with event
// tracing enabled and draws them the way the paper's figures do — one bar
// per action along the time axis.
//
//   ./build/examples/timelines
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <thread>

#include "core/structures/glued_action.h"
#include "core/structures/serializing_action.h"
#include "objects/recoverable_int.h"

using namespace mca;

namespace {

// Renders the trace as ASCII bars, one per named action.
void render(const EventTrace& trace, const std::map<Uid, std::string>& names,
            const char* title) {
  struct Bar {
    std::string name;
    std::chrono::steady_clock::time_point begin;
    std::chrono::steady_clock::time_point end;
    bool committed = false;
    bool seen_end = false;
  };
  std::vector<Bar> bars;
  auto bar_of = [&](const Uid& uid) -> Bar* {
    auto it = names.find(uid);
    if (it == names.end()) return nullptr;
    for (Bar& b : bars) {
      if (b.name == it->second) return &b;
    }
    return nullptr;
  };

  const auto events = trace.snapshot();
  if (events.empty()) return;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceKind::ActionBegin) {
      auto it = names.find(e.action);
      if (it != names.end()) bars.push_back(Bar{it->second, e.at, e.at, false, false});
    } else if (e.kind == TraceKind::ActionCommit || e.kind == TraceKind::ActionAbort) {
      if (Bar* b = bar_of(e.action)) {
        b->end = e.at;
        b->committed = e.kind == TraceKind::ActionCommit;
        b->seen_end = true;
      }
    }
  }
  if (bars.empty()) return;

  const auto t0 = bars.front().begin;
  auto t1 = t0;
  for (const Bar& b : bars) t1 = std::max(t1, b.end);
  const double span = std::max<double>(
      1.0, static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()));
  constexpr int kWidth = 60;
  auto column = [&](std::chrono::steady_clock::time_point t) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(t - t0).count();
    return static_cast<int>(static_cast<double>(us) / span * (kWidth - 1));
  };

  std::printf("%s\n", title);
  for (const Bar& b : bars) {
    const int from = column(b.begin);
    const int to = std::max(from + 1, column(b.end));
    std::string line(static_cast<std::size_t>(kWidth), ' ');
    line[static_cast<std::size_t>(from)] = '|';
    for (int i = from + 1; i < to; ++i) line[static_cast<std::size_t>(i)] = '=';
    line[static_cast<std::size_t>(to)] = '|';
    std::printf("  %-4s %s %s\n", b.name.c_str(), line.c_str(),
                b.seen_end ? (b.committed ? "committed" : "ABORTED") : "running");
  }
  std::printf("       %-*s time ->\n\n", kWidth - 6, "");
}

void pause_ms(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

}  // namespace

int main() {
  // Fig. 3: a serializing action A with constituents B then C; C fails and
  // A aborts, yet B's committed work survives.
  {
    Runtime rt;
    rt.trace().enable();
    RecoverableInt obj(rt, 0);
    std::map<Uid, std::string> names;

    SerializingAction ser(rt);
    names[ser.action().uid()] = "A";
    ser.begin();
    {
      auto b = ser.constituent();
      names[b->uid()] = "B";
      b->begin();
      obj.set(1);
      pause_ms(30);
      b->commit();
    }
    pause_ms(10);
    {
      auto c = ser.constituent();
      names[c->uid()] = "C";
      c->begin();
      obj.set(2);
      pause_ms(20);
      c->abort();  // C fails
    }
    ser.abort();

    render(rt.trace(), names, "fig. 3 — serializing action (B's effects survive):");
    AtomicAction check(rt);
    check.begin();
    std::printf("  final value: %lld (B committed 1; C's 2 was undone)\n\n",
                static_cast<long long>(obj.value()));
    check.commit();
  }

  // Fig. 5: A glued to B — A's other locks release at its commit while the
  // passed object carries over.
  {
    Runtime rt;
    rt.trace().enable();
    RecoverableInt passed(rt, 0);
    RecoverableInt released(rt, 0);
    std::map<Uid, std::string> names;

    GlueGroup glue(rt);
    names[glue.action().uid()] = "G";
    glue.begin();
    {
      auto a = glue.constituent();
      names[a.action().uid()] = "A";
      a.begin();
      passed.set(1);
      released.set(1);
      glue.pass_on(a, passed);
      pause_ms(25);
      a.commit();
    }
    pause_ms(15);
    {
      auto b = glue.constituent();
      names[b.action().uid()] = "B";
      b.begin();
      passed.add(10);
      pause_ms(35);
      b.commit();
    }
    glue.end();
    render(rt.trace(), names, "fig. 5 — glued actions (the glue group spans the gap):");
  }

  // Fig. 7(b): an asynchronous top-level independent action overlapping its
  // invoker.
  {
    Runtime rt;
    rt.trace().enable();
    RecoverableInt board(rt, 0);
    std::map<Uid, std::string> names;

    AtomicAction app(rt);
    names[app.uid()] = "A";
    app.begin();
    std::promise<Uid> b_uid;
    auto future_uid = b_uid.get_future();
    {
      AtomicAction b(rt, &app, ColourSet{Colour::fresh("indep")});
      std::jthread runner([&rt, &b, &board, &b_uid] {
        b.begin();
        b_uid.set_value(b.uid());
        board.add(1);
        pause_ms(40);
        b.commit();
      });
      pause_ms(20);  // A carries on concurrently
      runner.join();
    }
    names[future_uid.get()] = "B";
    pause_ms(10);
    app.abort();  // B's posting survives

    render(rt.trace(), names, "fig. 7b — asynchronous top-level independent action:");
    std::printf("  (A aborted; B's effect is permanent)\n");
  }
  return 0;
}
