// Metered service: billing (§4 iii), type-specific recovery (§2) and the
// compensation mechanism the paper leaves as future work (§3.4), together.
//
// A service processes requests inside an action. Usage is metered on a
// CommutativeCounter — concurrent requests meter without blocking each
// other, and an aborted request compensates its own usage instead of
// clobbering the others'. Side effects (a receipt posted to a log) run as
// independent actions inside a CompensationScope: when the request fails
// after posting, the scope retracts the receipt.
//
//   ./build/examples/metered_service
#include <cstdio>

#include "core/structures/compensating_action.h"
#include "objects/commutative_counter.h"
#include "objects/recoverable_log.h"

using namespace mca;

namespace {

// One service request: meters `units`, posts a receipt, then either
// completes or fails.
bool handle_request(Runtime& rt, CommutativeCounter& meter, RecoverableLog& receipts,
                    const std::string& user, int units, bool fail) {
  AtomicAction request(rt);
  request.begin();
  CompensationScope scope(rt);

  // Metering: tallied on the request action; commits or compensates with it.
  meter.add(units);

  // Receipt: permanent immediately (independent), compensated on failure.
  scope.step([&] { receipts.append("receipt " + user + ":" + std::to_string(units)); },
             [&] { receipts.append("VOID " + user + ":" + std::to_string(units)); });

  if (fail) {
    request.abort();   // the metering tally is compensated (subtracted)
    scope.abandon();   // the receipt is voided
    return false;
  }
  request.commit();
  scope.complete();
  return true;
}

}  // namespace

int main() {
  Runtime rt;
  CommutativeCounter meter(rt, 0);
  RecoverableLog receipts(rt);

  handle_request(rt, meter, receipts, "alice", 10, /*fail=*/false);
  handle_request(rt, meter, receipts, "bob", 25, /*fail=*/true);  // fails mid-way
  handle_request(rt, meter, receipts, "carol", 5, /*fail=*/false);

  AtomicAction report(rt);
  report.begin();
  std::printf("metered usage: %lld units (expected 15: bob's 25 were compensated)\n",
              static_cast<long long>(meter.committed_value()));
  std::printf("receipt log:\n");
  for (const auto& line : receipts.entries()) std::printf("  %s\n", line.c_str());
  report.commit();

  const ActionStats stats = rt.action_stats();
  std::printf("actions: %llu begun, %llu committed, %llu aborted\n",
              static_cast<unsigned long long>(stats.begun),
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted));
  return 0;
}
